//! The compaction executors (paper §III).
//!
//! * [`ScpExec`] — the **Sequential Compaction Procedure**: sub-tasks are
//!   processed one after another, the seven steps strictly in order, on one
//!   thread. Either the disk or the CPU is busy at any instant, never both
//!   (Fig. 3).
//! * [`PipelinedExec`] — the **Pipelined Compaction Procedure** and its
//!   parallel variants, configured by [`PipelineConfig`]:
//!   - `compute_workers = 1, read_workers = 1` → **PCP** (Fig. 4): three
//!     stages — stage-read | stage-compute | stage-write — on three
//!     threads, connected by bounded queues;
//!   - `compute_workers = k` → **C-PPCP** (Fig. 7b): k compute workers,
//!     each processing *whole sub-tasks* (S2–S6 stay on one core for
//!     d-cache locality, exactly the paper's argument against a deeper
//!     pipeline), with a resequencer before the write stage;
//!   - `read_workers = k` → **S-PPCP** (Fig. 7a): k read lanes issuing S1
//!     for different sub-tasks concurrently; pair with a RAID0-backed
//!     [`pcp_storage::Env`] so the lanes land on different spindles.
//!     Writes stay on one lane and stripe inside the array, matching the
//!     paper's md-RAID0 setup.
//!
//! All executors implement [`pcp_compaction::CompactionExec`] and produce
//! byte-identical output tables for identical inputs (enforced by the
//! cross-executor integration tests).

use crate::planner::{plan_subtasks, RunBlocks};
use crate::profile::{CompactionProfile, Occupancy, ProfileSnapshot, Step};
use crate::steps::{
    compute_subtask, read_subtask, ComputeConfig, ComputedSubTask,
};
use crossbeam::channel::bounded;
use pcp_compaction::{CompactionExec, CompactionRequest, FileMetadata};
use pcp_compaction::filename::table_file;
use pcp_obs::TraceLog;
use pcp_sstable::key::user_key;
use pcp_sstable::{Result as TableResult, TableBuilder, TableReader};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Pipeline shape. Defaults correspond to plain PCP with the paper's best
/// sub-task size on SSD (512 KB, Fig. 11a).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Target stored bytes per sub-task.
    pub subtask_bytes: u64,
    /// Compute-stage workers (k of C-PPCP).
    pub compute_workers: usize,
    /// Read-stage lanes (k of S-PPCP).
    pub read_workers: usize,
    /// Bounded-queue capacity between adjacent stages.
    pub queue_depth: usize,
    /// Split the compute stage into three pipeline stages (S2+S3 | S4 |
    /// S5+S6) on three threads — the deeper pipeline the paper argues
    /// *against* in §III-B (load imbalance, d-cache locality). Kept as a
    /// real implementation so the ablation can measure the argument.
    pub deep_compute: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            subtask_bytes: 512 << 10,
            compute_workers: 1,
            read_workers: 1,
            queue_depth: 4,
            deep_compute: false,
        }
    }
}

/// Shared per-compaction bookkeeping for both executors: publishes the
/// occupancy of the compaction that just finished (computed as the
/// profile delta over its wall time — the Fig. 5 quantity) and emits the
/// `compaction_done` trace event. When several compactions share one
/// profile concurrently the delta attributes overlapping step time to
/// whichever finishes last; occupancies are exact whenever compactions on
/// a profile are serialized (the common case: one executor per DB).
fn finish_compaction(
    profile: &CompactionProfile,
    before: &ProfileSnapshot,
    trace: Option<&TraceLog>,
    outputs: usize,
) -> Occupancy {
    let occ = profile.snapshot().delta(before).occupancy();
    profile.set_last_occupancy(&occ);
    if let Some(t) = trace {
        t.record(
            "compaction_done",
            &[
                ("outputs", outputs as u64),
                ("wall_nanos", occ.wall.as_nanos() as u64),
                ("read_busy_ppm", (occ.read * 1e6) as u64),
                ("compute_busy_ppm", (occ.compute * 1e6) as u64),
                ("write_busy_ppm", (occ.write * 1e6) as u64),
            ],
        );
    }
    occ
}

fn compute_config(req: &CompactionRequest) -> ComputeConfig {
    ComputeConfig {
        block_size: req.table_opts.block_size,
        restart_interval: req.table_opts.restart_interval,
        compression: req.table_opts.compression,
        smallest_snapshot: req.smallest_snapshot,
        bottom_level: req.bottom_level,
    }
}

/// Compressed bytes one sub-task read off the device (for bandwidth
/// pacing against the request's [`pcp_compaction::ResourceGrant`]).
fn raw_bytes(data: &crate::steps::SubTaskData) -> u64 {
    data.raw_blocks
        .iter()
        .flat_map(|run| run.iter())
        .map(|b| b.len() as u64)
        .sum()
}

fn gather_runs(req: &CompactionRequest) -> TableResult<(Vec<Arc<TableReader>>, Vec<RunBlocks>)> {
    let readers: Vec<Arc<TableReader>> = req
        .upper
        .iter()
        .chain(req.lower.iter())
        .cloned()
        .collect();
    let mut runs = Vec::with_capacity(readers.len());
    for r in &readers {
        runs.push(r.block_metas()?);
    }
    Ok((readers, runs))
}

/// Step S7 owner: appends sealed blocks to size-rotated output tables.
/// One [`SealedWriter::write_subtask`] call flushes once — one write I/O
/// per sub-task, the unit the paper schedules on the disk.
pub struct SealedWriter<'req> {
    req: &'req CompactionRequest,
    profile: &'req CompactionProfile,
    builder: Option<(u64, TableBuilder)>,
    smallest: Vec<u8>,
    last_user_key: Vec<u8>,
    outputs: Vec<Arc<FileMetadata>>,
    /// Numbers of outputs whose finish failed, pending abort cleanup.
    aborted_numbers: Vec<u64>,
}

impl<'req> SealedWriter<'req> {
    /// Creates a writer for `req`'s output level.
    pub fn new(req: &'req CompactionRequest, profile: &'req CompactionProfile) -> Self {
        SealedWriter {
            req,
            profile,
            builder: None,
            smallest: Vec::new(),
            last_user_key: Vec::new(),
            outputs: Vec::new(),
            aborted_numbers: Vec::new(),
        }
    }

    /// Appends one computed sub-task (S7) and flushes it to the device.
    pub fn write_subtask(&mut self, st: ComputedSubTask) -> TableResult<()> {
        let t0 = Instant::now();
        let mut appended = 0u64;
        for sb in &st.blocks {
            let rotate = self
                .builder
                .as_ref()
                .is_some_and(|(_, b)| b.estimated_size() >= self.req.max_output_bytes)
                && user_key(&sb.first_key) != self.last_user_key.as_slice();
            if rotate {
                self.finish_current()?;
            }
            if self.builder.is_none() {
                let number = self.req.next_file_number();
                let file = self.req.env.create(&table_file(number))?;
                self.builder = Some((
                    number,
                    TableBuilder::new(file, self.req.table_opts.clone()),
                ));
                self.smallest = sb.first_key.clone();
            }
            let (_, b) = self.builder.as_mut().expect("builder");
            b.add_sealed_block(
                &sb.raw,
                &sb.first_key,
                &sb.last_key,
                sb.entries,
                sb.raw_len,
                &sb.bloom_hashes,
            )?;
            appended += sb.raw.len() as u64;
            self.last_user_key.clear();
            self.last_user_key.extend_from_slice(user_key(&sb.last_key));
        }
        if let Some((_, b)) = &mut self.builder {
            b.flush_io()?;
        }
        self.profile.record(Step::Write, t0.elapsed());
        self.profile.add_output_bytes(appended);
        self.profile.add_subtasks(1);
        // Pace against the scheduler's bandwidth grant *after* accounting,
        // so the artificial wait is not booked as S7 busy time.
        self.req.grant.throttle(appended);
        Ok(())
    }

    fn finish_current(&mut self) -> TableResult<()> {
        if let Some((number, builder)) = self.builder.take() {
            let largest = builder.last_key().to_vec();
            let stats = match builder.finish() {
                Ok(stats) => stats,
                Err(e) => {
                    // The half-written table is already an orphan; remember
                    // it so abort() can sweep it.
                    self.aborted_numbers.push(number);
                    return Err(e);
                }
            };
            // Footer/index/filter bytes beyond the sealed data blocks.
            self.profile.add_output_bytes(
                stats
                    .file_size
                    .saturating_sub(self.outputs_last_data_bytes(stats.file_size)),
            );
            self.outputs.push(Arc::new(FileMetadata {
                number,
                size: stats.file_size,
                entries: stats.entries,
                smallest: std::mem::take(&mut self.smallest),
                largest,
            }));
        }
        Ok(())
    }

    // Data bytes were already counted per append; approximate the metadata
    // overhead as zero here to avoid double counting (kept as a hook).
    fn outputs_last_data_bytes(&self, file_size: u64) -> u64 {
        file_size
    }

    /// Finishes the trailing table; returns outputs in key order. On error
    /// the writer still owns every created file — call
    /// [`SealedWriter::abort`] to sweep them.
    pub fn finish(&mut self) -> TableResult<Vec<Arc<FileMetadata>>> {
        let t0 = Instant::now();
        self.finish_current()?;
        self.profile.record(Step::Write, t0.elapsed());
        Ok(std::mem::take(&mut self.outputs))
    }

    /// Deletes every output file this writer created (the in-progress
    /// table and all finished ones). Called when the compaction fails so
    /// partial outputs never outlive the attempt. Best-effort: a file
    /// whose delete fails (e.g. the env already crashed) is left for the
    /// database's orphan scan. Returns how many files were deleted.
    pub fn abort(&mut self) -> usize {
        if let Some((number, builder)) = self.builder.take() {
            drop(builder); // close the file handle before unlinking
            self.aborted_numbers.push(number);
        }
        let numbers = self
            .aborted_numbers
            .drain(..)
            .chain(self.outputs.drain(..).map(|m| m.number));
        let mut deleted = 0;
        for number in numbers {
            if self.req.env.delete(&table_file(number)).is_ok() {
                deleted += 1;
            }
        }
        deleted
    }
}

// ---------------------------------------------------------------------------
// SCP
// ---------------------------------------------------------------------------

/// The sequential baseline (paper §III-A).
pub struct ScpExec {
    /// Sub-task size: in SCP this is simply the I/O granularity.
    pub subtask_bytes: u64,
    profile: Arc<CompactionProfile>,
    trace: Option<Arc<TraceLog>>,
}

impl ScpExec {
    /// SCP with the given I/O granularity.
    pub fn new(subtask_bytes: u64) -> ScpExec {
        ScpExec {
            subtask_bytes,
            profile: Arc::new(CompactionProfile::new()),
            trace: None,
        }
    }

    /// Attaches a trace log; the executor emits `compaction_start` /
    /// `compaction_done` / `compaction_failed` lifecycle events into it.
    pub fn with_trace(mut self, trace: Arc<TraceLog>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Replaces the step profile with a shared one, so several executors
    /// (e.g. the shapes inside [`crate::AdaptiveExec`]) account into the
    /// same occupancy history.
    pub fn with_profile(mut self, profile: Arc<CompactionProfile>) -> Self {
        self.profile = profile;
        self
    }

    /// Shared step profile.
    pub fn profile(&self) -> Arc<CompactionProfile> {
        Arc::clone(&self.profile)
    }
}

impl Default for ScpExec {
    fn default() -> Self {
        ScpExec::new(512 << 10)
    }
}

impl CompactionExec for ScpExec {
    fn name(&self) -> &'static str {
        "scp"
    }

    fn compact(&self, req: &CompactionRequest) -> TableResult<Vec<Arc<FileMetadata>>> {
        let wall = Instant::now();
        let before = self.profile.snapshot();
        let (readers, runs) = gather_runs(req)?;
        let plan = plan_subtasks(&runs, self.subtask_bytes);
        if let Some(t) = &self.trace {
            t.record(
                "compaction_start",
                &[
                    ("exec", 0), // 0 = scp (see OBSERVABILITY.md)
                    ("inputs", readers.len() as u64),
                    ("subtasks", plan.len() as u64),
                ],
            );
        }
        let ccfg = compute_config(req);
        let mut writer = SealedWriter::new(req, &self.profile);
        let result = {
            let mut run = || -> TableResult<Vec<Arc<FileMetadata>>> {
                for st in &plan {
                    // S1 … S7 strictly in order; one resource busy at a time.
                    let data = read_subtask(&readers, st, &self.profile)?;
                    req.grant.throttle(raw_bytes(&data));
                    let computed = compute_subtask(data, &ccfg, &self.profile)?;
                    writer.write_subtask(computed)?;
                }
                writer.finish()
            };
            run()
        };
        match result {
            Ok(outputs) => {
                self.profile.add_compaction(wall.elapsed());
                finish_compaction(
                    &self.profile,
                    &before,
                    self.trace.as_deref(),
                    outputs.len(),
                );
                Ok(outputs)
            }
            Err(e) => {
                // Sweep partial outputs so a failed compaction leaves no
                // orphan tables behind.
                let swept = writer.abort();
                if let Some(t) = &self.trace {
                    t.record("compaction_failed", &[("swept_outputs", swept as u64)]);
                }
                Err(e)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// PCP / C-PPCP / S-PPCP
// ---------------------------------------------------------------------------

/// The pipelined executor (PCP and both parallel variants).
pub struct PipelinedExec {
    cfg: PipelineConfig,
    profile: Arc<CompactionProfile>,
    trace: Option<Arc<TraceLog>>,
}

impl PipelinedExec {
    /// Builds an executor with an explicit shape.
    pub fn new(cfg: PipelineConfig) -> PipelinedExec {
        assert!(cfg.compute_workers >= 1 && cfg.read_workers >= 1);
        assert!(cfg.queue_depth >= 1);
        PipelinedExec {
            cfg,
            profile: Arc::new(CompactionProfile::new()),
            trace: None,
        }
    }

    /// Attaches a trace log; the executor emits `compaction_start` /
    /// `compaction_done` / `compaction_failed` lifecycle events into it.
    pub fn with_trace(mut self, trace: Arc<TraceLog>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Plain PCP: 1 read lane, 1 compute worker, 1 write lane.
    pub fn pcp(subtask_bytes: u64) -> PipelinedExec {
        PipelinedExec::new(PipelineConfig {
            subtask_bytes,
            ..Default::default()
        })
    }

    /// C-PPCP with `k` compute workers.
    pub fn c_ppcp(subtask_bytes: u64, k: usize) -> PipelinedExec {
        PipelinedExec::new(PipelineConfig {
            subtask_bytes,
            compute_workers: k,
            ..Default::default()
        })
    }

    /// S-PPCP with `k` read lanes (pair with a RAID0-backed env).
    pub fn s_ppcp(subtask_bytes: u64, k: usize) -> PipelinedExec {
        PipelinedExec::new(PipelineConfig {
            subtask_bytes,
            read_workers: k,
            ..Default::default()
        })
    }

    /// Replaces the step profile with a shared one, so several executors
    /// (e.g. the shapes inside [`crate::AdaptiveExec`]) account into the
    /// same occupancy history.
    pub fn with_profile(mut self, profile: Arc<CompactionProfile>) -> Self {
        self.profile = profile;
        self
    }

    /// Shared step profile.
    pub fn profile(&self) -> Arc<CompactionProfile> {
        Arc::clone(&self.profile)
    }

    /// The configured shape.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }
}

impl CompactionExec for PipelinedExec {
    fn name(&self) -> &'static str {
        if self.cfg.deep_compute {
            return "pcp-deep";
        }
        match (self.cfg.read_workers, self.cfg.compute_workers) {
            (1, 1) => "pcp",
            (_, 1) => "s-ppcp",
            (1, _) => "c-ppcp",
            _ => "sc-ppcp",
        }
    }

    fn compact(&self, req: &CompactionRequest) -> TableResult<Vec<Arc<FileMetadata>>> {
        let wall = Instant::now();
        let before = self.profile.snapshot();
        let (readers, runs) = gather_runs(req)?;
        let plan = plan_subtasks(&runs, self.cfg.subtask_bytes);
        if plan.is_empty() {
            return Ok(Vec::new());
        }
        // The scheduler's grant caps how wide the parallel stages may run
        // this time; an unlimited grant leaves the configured shape alone.
        let read_workers = req.grant.clamp_workers(self.cfg.read_workers);
        let compute_workers = req.grant.clamp_workers(self.cfg.compute_workers);
        if let Some(t) = &self.trace {
            t.record(
                "compaction_start",
                &[
                    ("exec", 1), // 1 = pipelined (see OBSERVABILITY.md)
                    ("inputs", readers.len() as u64),
                    ("subtasks", plan.len() as u64),
                    ("read_workers", read_workers as u64),
                    ("compute_workers", compute_workers as u64),
                ],
            );
        }
        debug_assert!(crate::planner::check_plan(&runs, &plan).is_ok());
        let ccfg = compute_config(req);
        let profile = &*self.profile;

        let (read_tx, read_rx) = bounded::<TableResult<crate::steps::SubTaskData>>(
            self.cfg.queue_depth,
        );
        let (comp_tx, comp_rx) =
            bounded::<TableResult<ComputedSubTask>>(self.cfg.queue_depth);

        let mut result: TableResult<Vec<Arc<FileMetadata>>> = Ok(Vec::new());
        std::thread::scope(|scope| {
            // Stage read: `read_workers` lanes, sub-tasks round-robin.
            for lane in 0..read_workers {
                let read_tx = read_tx.clone();
                let readers = &readers;
                let plan = &plan;
                let grant = &req.grant;
                let lanes = read_workers;
                scope.spawn(move || {
                    for st in plan.iter().filter(|st| st.index % lanes == lane) {
                        let item = read_subtask(readers, st, profile);
                        if let Ok(data) = &item {
                            grant.throttle(raw_bytes(data));
                        }
                        let failed = item.is_err();
                        if read_tx.send(item).is_err() || failed {
                            return;
                        }
                    }
                });
            }
            drop(read_tx);

            if self.cfg.deep_compute {
                // Five-stage variant: S2+S3 | S4 | S5+S6 on three chained
                // threads (the paper's rejected design, for the ablation).
                let (dec_tx, dec_rx) =
                    bounded::<TableResult<crate::steps::DecodedSubTask>>(self.cfg.queue_depth);
                let (mrg_tx, mrg_rx) =
                    bounded::<TableResult<crate::steps::MergedSubTask>>(self.cfg.queue_depth);
                {
                    let read_rx = read_rx.clone();
                    scope.spawn(move || {
                        while let Ok(item) = read_rx.recv() {
                            let out = item
                                .and_then(|data| crate::steps::verify_decompress(data, profile));
                            let failed = out.is_err();
                            if dec_tx.send(out).is_err() || failed {
                                return;
                            }
                        }
                    });
                }
                {
                    let ccfg = &ccfg;
                    scope.spawn(move || {
                        while let Ok(item) = dec_rx.recv() {
                            let out = item
                                .and_then(|dec| crate::steps::merge_subtask(dec, ccfg, profile));
                            let failed = out.is_err();
                            if mrg_tx.send(out).is_err() || failed {
                                return;
                            }
                        }
                    });
                }
                {
                    let comp_tx = comp_tx.clone();
                    let ccfg = &ccfg;
                    scope.spawn(move || {
                        while let Ok(item) = mrg_rx.recv() {
                            let out =
                                item.and_then(|m| crate::steps::seal_subtask(m, ccfg, profile));
                            let failed = out.is_err();
                            if comp_tx.send(out).is_err() || failed {
                                return;
                            }
                        }
                    });
                }
            } else {
                // Stage compute: whole sub-tasks per worker (the paper's
                // chosen design — d-cache locality, no imbalance).
                for _ in 0..compute_workers {
                    let read_rx = read_rx.clone();
                    let comp_tx = comp_tx.clone();
                    let ccfg = &ccfg;
                    scope.spawn(move || {
                        while let Ok(item) = read_rx.recv() {
                            let out = item.and_then(|data| compute_subtask(data, ccfg, profile));
                            let failed = out.is_err();
                            if comp_tx.send(out).is_err() || failed {
                                return;
                            }
                        }
                    });
                }
            }
            drop(comp_tx);
            drop(read_rx);

            // Stage write on this thread, resequencing by sub-task index so
            // the output tables are written in key order no matter how the
            // compute workers finish.
            let mut writer = SealedWriter::new(req, profile);
            let mut pending: BTreeMap<usize, ComputedSubTask> = BTreeMap::new();
            let mut next = 0usize;
            let mut failure: Option<pcp_sstable::TableError> = None;
            for item in comp_rx.iter() {
                match item {
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                    Ok(st) => {
                        pending.insert(st.index, st);
                        while let Some(st) = pending.remove(&next) {
                            if let Err(e) = writer.write_subtask(st) {
                                failure = Some(e);
                                break;
                            }
                            next += 1;
                        }
                        if failure.is_some() {
                            break;
                        }
                    }
                }
            }
            // Shut the pipeline down before the scope joins the stage
            // threads: dropping the tail receiver makes every upstream
            // `send` fail, which unwinds read and compute workers that
            // would otherwise block forever on a full bounded queue.
            drop(comp_rx);
            result = match failure {
                Some(e) => {
                    writer.abort();
                    Err(e)
                }
                None => {
                    debug_assert_eq!(next, plan.len(), "all sub-tasks written");
                    let out = writer.finish();
                    if out.is_err() {
                        writer.abort();
                    }
                    out
                }
            };
        });
        match &result {
            Ok(outputs) => {
                self.profile.add_compaction(wall.elapsed());
                finish_compaction(
                    &self.profile,
                    &before,
                    self.trace.as_deref(),
                    outputs.len(),
                );
            }
            Err(_) => {
                if let Some(t) = &self.trace {
                    t.record("compaction_failed", &[]);
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcp_compaction::filename::table_file;
    use pcp_sstable::key::{make_internal_key, ValueType, MAX_SEQUENCE};
    use pcp_sstable::{KvIter, TableBuilderOptions};
    use pcp_storage::{EnvRef, SimDevice, SimEnv};
    use std::sync::atomic::AtomicU64;

    fn env() -> EnvRef {
        Arc::new(SimEnv::new(Arc::new(SimDevice::mem(512 << 20))))
    }

    /// Deterministic incompressible filler so stored sizes track entry
    /// counts (and are identical across executors).
    fn filler(i: usize, tag: &str, len: usize) -> Vec<u8> {
        let mut x = (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (tag.len() as u64) << 32;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect()
    }

    /// Builds an input table with `n` entries starting at `seq0`, keys
    /// `key%06d` stepped by `stride`.
    fn build_input(
        env: &EnvRef,
        name: &str,
        n: usize,
        seq0: u64,
        stride: usize,
        tag: &str,
    ) -> Arc<TableReader> {
        let f = env.create(name).unwrap();
        let mut b = TableBuilder::new(f, TableBuilderOptions::default());
        for i in 0..n {
            let ik = make_internal_key(
                format!("key{:06}", i * stride).as_bytes(),
                seq0 + i as u64,
                ValueType::Value,
            );
            let mut value = format!("{tag}-{i}-").into_bytes();
            value.extend_from_slice(&filler(i, tag, 80));
            b.add(&ik, &value).unwrap();
        }
        b.finish().unwrap();
        Arc::new(TableReader::open(env.open(name).unwrap()).unwrap())
    }

    fn request(env: &EnvRef, upper: Vec<Arc<TableReader>>, lower: Vec<Arc<TableReader>>) -> CompactionRequest {
        CompactionRequest {
            env: Arc::clone(env),
            upper,
            lower,
            output_level: 1,
            bottom_level: true,
            smallest_snapshot: MAX_SEQUENCE,
            file_numbers: Arc::new(AtomicU64::new(1000)),
            table_opts: TableBuilderOptions::default(),
            max_output_bytes: 256 << 10,
            grant: pcp_compaction::ResourceGrant::unlimited(),
        }
    }

    type Kvs = Vec<(Vec<u8>, Vec<u8>)>;

    fn read_everything(env: &EnvRef, outputs: &[Arc<FileMetadata>]) -> Kvs {
        let mut all = Vec::new();
        for meta in outputs {
            let t = Arc::new(
                TableReader::open(env.open(&table_file(meta.number)).unwrap()).unwrap(),
            );
            let mut it = t.iter();
            it.seek_to_first();
            while it.valid() {
                all.push((it.key().to_vec(), it.value().to_vec()));
                it.next();
            }
        }
        all
    }

    fn run_exec(exec: &dyn CompactionExec, n: usize) -> (Kvs, usize) {
        let env = env();
        let upper = build_input(&env, "u.sst", n, 100_000, 2, "new");
        let lower = build_input(&env, "l.sst", n, 1, 3, "old");
        let req = request(&env, vec![upper], vec![lower]);
        let outputs = exec.compact(&req).unwrap();
        (read_everything(&env, &outputs), outputs.len())
    }

    #[test]
    fn all_executors_produce_identical_output() {
        let n = 3000;
        let (scp, scp_files) = run_exec(&ScpExec::new(64 << 10), n);
        for exec in [
            PipelinedExec::pcp(64 << 10),
            PipelinedExec::c_ppcp(64 << 10, 3),
            PipelinedExec::s_ppcp(64 << 10, 3),
            PipelinedExec::new(PipelineConfig {
                subtask_bytes: 64 << 10,
                compute_workers: 2,
                read_workers: 2,
                queue_depth: 2,
                deep_compute: false,
            }),
            PipelinedExec::new(PipelineConfig {
                subtask_bytes: 64 << 10,
                deep_compute: true,
                ..Default::default()
            }),
        ] {
            let (out, files) = run_exec(&exec, n);
            assert_eq!(out.len(), scp.len(), "{} entry count", exec.name());
            assert_eq!(out, scp, "{} diverged from SCP", exec.name());
            assert_eq!(files, scp_files, "{} file count", exec.name());
        }
    }

    #[test]
    fn merge_semantics_newest_wins_across_components() {
        let env = env();
        // Upper rewrites every 2nd key of lower with newer sequences.
        let upper = build_input(&env, "u.sst", 500, 10_000, 2, "new");
        let lower = build_input(&env, "l.sst", 1000, 1, 1, "old");
        let req = request(&env, vec![upper], vec![lower]);
        let exec = PipelinedExec::pcp(32 << 10);
        let outputs = exec.compact(&req).unwrap();
        let all = read_everything(&env, &outputs);
        assert_eq!(all.len(), 1000, "one version per user key");
        for (ik, v) in &all {
            let p = pcp_sstable::parse_internal_key(ik).unwrap();
            let idx: usize = std::str::from_utf8(&p.user_key[3..])
                .unwrap()
                .parse()
                .unwrap();
            if idx.is_multiple_of(2) {
                assert!(v.starts_with(b"new-"), "key {idx} must be rewritten");
            } else {
                assert!(v.starts_with(b"old-"), "key {idx} must survive");
            }
        }
    }

    #[test]
    fn outputs_respect_max_file_size_and_disjointness() {
        let env = env();
        let upper = build_input(&env, "u.sst", 5000, 1, 1, "x");
        let req = request(&env, vec![upper], vec![]);
        let exec = PipelinedExec::pcp(64 << 10);
        let outputs = exec.compact(&req).unwrap();
        assert!(outputs.len() > 1, "rotation expected");
        for w in outputs.windows(2) {
            assert!(user_key(&w[0].largest) < user_key(&w[1].smallest));
        }
        let total: u64 = outputs.iter().map(|f| f.entries).sum();
        assert_eq!(total, 5000);
    }

    #[test]
    fn empty_inputs_produce_no_outputs() {
        let env = env();
        let req = request(&env, vec![], vec![]);
        assert!(PipelinedExec::pcp(64 << 10).compact(&req).unwrap().is_empty());
        assert!(ScpExec::new(64 << 10).compact(&req).unwrap().is_empty());
    }

    #[test]
    fn profile_records_all_seven_steps() {
        let env = env();
        let upper = build_input(&env, "u.sst", 2000, 1, 1, "x");
        let req = request(&env, vec![upper], vec![]);
        let exec = PipelinedExec::pcp(64 << 10);
        exec.compact(&req).unwrap();
        let snap = exec.profile().snapshot();
        for s in crate::profile::Step::ALL {
            assert!(
                snap.time(s) > std::time::Duration::ZERO,
                "step {} unrecorded",
                s.label()
            );
        }
        assert!(snap.subtasks > 1);
        assert_eq!(snap.compactions, 1);
        assert!(snap.entries_in >= 2000);
        assert!(snap.bandwidth() > 0.0);
    }

    /// Every executor publishes a per-compaction occupancy and, with a
    /// trace attached, the start/done lifecycle events.
    #[test]
    fn compaction_publishes_occupancy_and_trace_events() {
        let trace = Arc::new(TraceLog::new(64));
        let exec = PipelinedExec::pcp(64 << 10).with_trace(Arc::clone(&trace));
        let env = env();
        let upper = build_input(&env, "u.sst", 2000, 1, 1, "x");
        let req = request(&env, vec![upper], vec![]);
        exec.compact(&req).unwrap();

        let occ = exec.profile().last_occupancy();
        assert!(occ.read > 0.0 && occ.compute > 0.0 && occ.write > 0.0);
        assert!(occ.read <= 1.0 && occ.compute <= 1.0 && occ.write <= 1.0);
        assert!(occ.wall > std::time::Duration::ZERO);

        let kinds: Vec<&str> = trace.events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["compaction_start", "compaction_done"]);
        let done = &trace.events()[1];
        let field = |k: &str| done.fields.iter().find(|(n, _)| *n == k).unwrap().1;
        assert!(field("outputs") > 0);
        assert!(field("wall_nanos") > 0);
        assert_eq!(field("read_busy_ppm"), (occ.read * 1e6) as u64);
    }

    /// SCP runs its seven steps strictly sequentially, so the three
    /// resource fractions must sum to at most 1.0 exactly.
    #[test]
    fn scp_occupancy_fractions_sum_to_at_most_one() {
        let trace = Arc::new(TraceLog::new(8));
        let exec = ScpExec::new(32 << 10).with_trace(Arc::clone(&trace));
        let env = env();
        let upper = build_input(&env, "u.sst", 2000, 1, 1, "x");
        let req = request(&env, vec![upper], vec![]);
        exec.compact(&req).unwrap();
        let occ = exec.profile().last_occupancy();
        assert!(occ.read > 0.0 && occ.compute > 0.0 && occ.write > 0.0);
        assert!(
            occ.read + occ.compute + occ.write <= 1.0 + 1e-6,
            "sequential executor busy time exceeded wall time: {occ:?}"
        );
        assert_eq!(trace.events()[0].kind, "compaction_start");
    }

    #[test]
    fn executor_names() {
        assert_eq!(ScpExec::default().name(), "scp");
        assert_eq!(PipelinedExec::pcp(1 << 20).name(), "pcp");
        assert_eq!(PipelinedExec::c_ppcp(1 << 20, 4).name(), "c-ppcp");
        assert_eq!(PipelinedExec::s_ppcp(1 << 20, 4).name(), "s-ppcp");
    }

    /// A permanent write failure mid-compaction must terminate every stage
    /// thread (no deadlock on the bounded queues), surface the error, and
    /// leave no orphan output tables behind.
    #[test]
    fn write_failure_terminates_cleanly_and_sweeps_orphans() {
        use pcp_storage::{FaultEnv, FaultKind, FaultOp};
        for exec in [
            PipelinedExec::pcp(16 << 10),
            PipelinedExec::c_ppcp(16 << 10, 3),
            PipelinedExec::s_ppcp(16 << 10, 3),
            PipelinedExec::new(PipelineConfig {
                subtask_bytes: 16 << 10,
                deep_compute: true,
                ..Default::default()
            }),
        ] {
            let inner = env();
            let upper = build_input(&inner, "u.sst", 3000, 100_000, 2, "new");
            let lower = build_input(&inner, "l.sst", 3000, 1, 3, "old");
            // Inputs were opened on the inner env, so only output writes
            // go through the fault wrapper; every output flush fails while
            // upstream stages still have sub-tasks in flight.
            let fault = FaultEnv::new(Arc::clone(&inner), 33);
            fault.set_probability(FaultOp::Flush, 1.0);
            fault.set_probabilistic_kind(FaultKind::Permanent);
            let mut req = request(&inner, vec![upper], vec![lower]);
            req.env = Arc::new(fault);
            let out = exec.compact(&req);
            assert!(out.is_err(), "{}: fault must surface", exec.name());
            let left = inner.list().unwrap();
            assert_eq!(
                {
                    let mut l = left.clone();
                    l.sort();
                    l
                },
                vec!["l.sst".to_string(), "u.sst".to_string()],
                "{}: orphan outputs must be swept, found {left:?}",
                exec.name()
            );
        }
    }

    /// SCP gets the same abort-and-sweep treatment as the pipeline.
    #[test]
    fn scp_write_failure_sweeps_orphans() {
        use pcp_storage::{FaultEnv, FaultKind, FaultOp};
        let inner = env();
        let upper = build_input(&inner, "u.sst", 3000, 1, 1, "x");
        let fault = FaultEnv::new(Arc::clone(&inner), 7);
        fault.schedule(FaultOp::Flush, 3, FaultKind::Permanent);
        let mut req = request(&inner, vec![upper], vec![]);
        req.env = Arc::new(fault);
        assert!(ScpExec::new(16 << 10).compact(&req).is_err());
        assert_eq!(inner.list().unwrap(), vec!["u.sst".to_string()]);
    }

    /// A transient fault window makes an attempt fail, but re-running the
    /// same request succeeds and produces output identical to a fault-free
    /// run — the driver-level retry contract.
    #[test]
    fn retry_after_transient_fault_matches_clean_run() {
        use pcp_storage::{FaultEnv, FaultKind, FaultOp};
        let n = 2000;
        let (clean, _) = run_exec(&PipelinedExec::pcp(32 << 10), n);

        let inner = env();
        let upper = build_input(&inner, "u.sst", n, 100_000, 2, "new");
        let lower = build_input(&inner, "l.sst", n, 1, 3, "old");
        let fault = FaultEnv::new(Arc::clone(&inner), 5);
        fault.schedule(FaultOp::Flush, 2, FaultKind::Transient);
        let mut req = request(&inner, vec![upper], vec![lower]);
        req.env = Arc::new(fault.clone());
        let exec = PipelinedExec::pcp(32 << 10);
        assert!(exec.compact(&req).is_err(), "first attempt hits the fault");
        assert_eq!(fault.stats().transient, 1);
        // The failed attempt swept its partial outputs, so the retry
        // starts from a clean slate (fresh file numbers notwithstanding).
        let outputs = exec.compact(&req).unwrap();
        assert_eq!(read_everything(&inner, &outputs), clean);
    }

    #[test]
    fn tombstones_dropped_at_bottom_via_pipeline() {
        let env = env();
        // Upper: tombstones for every key in lower.
        let f = env.create("u.sst").unwrap();
        let mut b = TableBuilder::new(f, TableBuilderOptions::default());
        for i in 0..500 {
            let ik = make_internal_key(
                format!("key{:06}", i).as_bytes(),
                10_000 + i as u64,
                ValueType::Deletion,
            );
            b.add(&ik, b"").unwrap();
        }
        b.finish().unwrap();
        let upper = Arc::new(TableReader::open(env.open("u.sst").unwrap()).unwrap());
        let lower = build_input(&env, "l.sst", 500, 1, 1, "old");
        let req = request(&env, vec![upper], vec![lower]);
        let outputs = PipelinedExec::pcp(32 << 10).compact(&req).unwrap();
        let all = read_everything(&env, &outputs);
        assert!(all.is_empty(), "everything annihilates at the bottom level");
    }
}
