//! Runtime executor selection: pick the pipeline shape per compaction
//! from the occupancy the previous compaction published.
//!
//! The paper fixes the pipeline shape per experiment — plain PCP, C-PPCP
//! with k compute workers, or S-PPCP with k read lanes — and shows each
//! wins on a different device/workload point (Fig. 7–9). Pome ("Parallel-
//! izing I/Os and Computations for Efficient LSM-tree-based Data Storage",
//! PAPERS.md) argues the shape must be chosen *at runtime*, per
//! compaction. [`AdaptiveExec`] does exactly that, using the signal the
//! paper itself proposes: the per-resource **occupancy** of the previous
//! compaction (the Fig. 5 quantity, published by every executor through
//! [`CompactionProfile::last_occupancy`]).
//!
//! Decision table (see DESIGN.md §15 for the rationale):
//!
//! | condition (checked in order)                   | choice          |
//! |------------------------------------------------|-----------------|
//! | input < `small_job_bytes`                      | simple merge    |
//! | no occupancy history yet (first compaction)    | PCP             |
//! | compute ≥ read, write and ≥ threshold, k > 1   | C-PPCP(k)       |
//! | read ≥ write and ≥ threshold, k > 1            | S-PPCP(k)       |
//! | otherwise                                      | PCP             |
//!
//! where `k` is the smaller of the scheduler's stage-token grant and
//! [`AdaptiveConfig::max_workers`]. All shapes share one
//! [`CompactionProfile`], so the occupancy history is continuous across
//! shape switches and the selection is a pure function of (occupancy,
//! input size, grant) — deterministic and unit-testable.

use crate::pipeline::{PipelineConfig, PipelinedExec};
use crate::profile::{CompactionProfile, Occupancy};
use pcp_compaction::{CompactionExec, CompactionRequest, FileMetadata, SimpleMergeExec};
use pcp_obs::TraceLog;
use pcp_sstable::Result as TableResult;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tuning knobs for [`AdaptiveExec`]. Defaults follow the paper's best
/// settings (512 KB sub-tasks, Fig. 11a) with thresholds chosen so the
/// pipeline only widens when a stage is clearly the bottleneck.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Sub-task size handed to the pipelined shapes.
    pub subtask_bytes: u64,
    /// Jobs smaller than this skip the pipeline entirely: thread spawn and
    /// queue setup cost more than they save on a couple of sub-tasks.
    pub small_job_bytes: u64,
    /// A stage's occupancy must reach this fraction before the pipeline is
    /// widened toward it (C-PPCP / S-PPCP instead of plain PCP).
    pub parallel_threshold: f64,
    /// Upper bound on parallel-stage workers regardless of the grant
    /// (defaults to the host's cores — the paper's C-PPCP argument).
    pub max_workers: usize,
    /// Bounded-queue capacity between pipeline stages.
    pub queue_depth: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            subtask_bytes: 512 << 10,
            small_job_bytes: 4 << 20,
            parallel_threshold: 0.7,
            max_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_depth: 4,
        }
    }
}

/// The pipeline shape [`AdaptiveExec::choose`] settled on for one
/// compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecChoice {
    /// Entry-at-a-time reference merge — small jobs.
    Simple,
    /// Plain 3-stage pipeline (1 read lane, 1 compute worker).
    Pcp,
    /// k compute workers with a resequencer — compute-bound inputs.
    CPpcp(usize),
    /// k read lanes — read-bound inputs (RAID-style envs).
    SPpcp(usize),
}

impl ExecChoice {
    /// Stable label for metrics and traces.
    pub fn label(&self) -> &'static str {
        match self {
            ExecChoice::Simple => "simple",
            ExecChoice::Pcp => "pcp",
            ExecChoice::CPpcp(_) => "c-ppcp",
            ExecChoice::SPpcp(_) => "s-ppcp",
        }
    }

    fn index(&self) -> usize {
        match self {
            ExecChoice::Simple => 0,
            ExecChoice::Pcp => 1,
            ExecChoice::CPpcp(_) => 2,
            ExecChoice::SPpcp(_) => 3,
        }
    }
}

/// Labels of the four choices, index-aligned with the internal counters
/// (the order [`AdaptiveExec::choice_counts`] reports).
pub const CHOICE_LABELS: [&str; 4] = ["simple", "pcp", "c-ppcp", "s-ppcp"];

/// An executor that picks the pipeline shape per compaction from the
/// previous compaction's occupancy, the input size, and the scheduler's
/// stage-token grant — the engine's production default.
///
/// Output equivalence is unaffected: every shape it delegates to produces
/// byte-identical tables for identical inputs (the repo-wide executor
/// invariant), so switching shapes between compactions is invisible to
/// correctness.
pub struct AdaptiveExec {
    cfg: AdaptiveConfig,
    /// One profile shared by every delegate shape, so occupancy history
    /// survives shape switches.
    profile: Arc<CompactionProfile>,
    trace: Option<Arc<TraceLog>>,
    /// Per-choice pick counts, indexed like [`CHOICE_LABELS`]. Behind an
    /// `Arc` so metric-scrape closures can hold them without holding the
    /// executor itself.
    choices: Arc<[AtomicU64; 4]>,
}

impl Default for AdaptiveExec {
    fn default() -> Self {
        AdaptiveExec::new(AdaptiveConfig::default())
    }
}

impl AdaptiveExec {
    /// Builds the executor with explicit tuning.
    pub fn new(cfg: AdaptiveConfig) -> AdaptiveExec {
        AdaptiveExec {
            cfg,
            profile: Arc::new(CompactionProfile::new()),
            trace: None,
            choices: Arc::new([
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ]),
        }
    }

    /// Attaches a trace log; every compaction emits an `adaptive_choice`
    /// event (plus the delegate's usual lifecycle events).
    pub fn with_trace(mut self, trace: Arc<TraceLog>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The shared step profile (all delegate shapes account into it).
    pub fn profile(&self) -> Arc<CompactionProfile> {
        Arc::clone(&self.profile)
    }

    /// The tuning in effect.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// The pure selection function — deterministic in its inputs, used by
    /// [`AdaptiveExec::compact`] and tested directly. `stage_tokens` is
    /// the scheduler's grant for this compaction (`usize::MAX` when
    /// unlimited).
    pub fn choose(
        cfg: &AdaptiveConfig,
        occ: &Occupancy,
        input_bytes: u64,
        stage_tokens: usize,
    ) -> ExecChoice {
        if input_bytes < cfg.small_job_bytes {
            return ExecChoice::Simple;
        }
        let k = stage_tokens.min(cfg.max_workers).max(1);
        if occ.wall.is_zero() {
            // No history yet: start with the paper's baseline pipeline and
            // let its occupancy steer the next pick.
            return ExecChoice::Pcp;
        }
        if k > 1
            && occ.compute >= occ.read
            && occ.compute >= occ.write
            && occ.compute >= cfg.parallel_threshold
        {
            return ExecChoice::CPpcp(k);
        }
        if k > 1 && occ.read >= occ.write && occ.read >= cfg.parallel_threshold {
            return ExecChoice::SPpcp(k);
        }
        ExecChoice::Pcp
    }

    /// How often each shape has been picked, index-aligned with
    /// [`CHOICE_LABELS`].
    pub fn choice_counts(&self) -> [u64; 4] {
        [
            self.choices[0].load(Ordering::Relaxed),
            self.choices[1].load(Ordering::Relaxed),
            self.choices[2].load(Ordering::Relaxed),
            self.choices[3].load(Ordering::Relaxed),
        ]
    }

    /// Registers the shared profile (as `exec="adaptive"`) plus the
    /// `pcp_sched_executor_choice_total{choice=...}` counters. Also
    /// reachable through [`CompactionExec::register_metrics`] on the trait
    /// object, which is how engine-level code registers an executor it
    /// only knows as `Arc<dyn CompactionExec>`.
    pub fn register_metrics(&self, registry: &pcp_obs::Registry) {
        self.profile.register_metrics(registry, "adaptive");
        for (idx, label) in CHOICE_LABELS.iter().enumerate() {
            let counts = Arc::clone(&self.choices);
            registry.register_fn_counter(
                "pcp_sched_executor_choice_total",
                "compactions per pipeline shape picked by the adaptive executor",
                vec![("choice".to_string(), label.to_string())],
                move || counts[idx].load(Ordering::Relaxed),
            );
        }
    }

    /// Builds the delegate pipeline for one compaction, sharing this
    /// executor's profile and trace.
    fn pipelined(&self, read_workers: usize, compute_workers: usize) -> PipelinedExec {
        let exec = PipelinedExec::new(PipelineConfig {
            subtask_bytes: self.cfg.subtask_bytes,
            compute_workers,
            read_workers,
            queue_depth: self.cfg.queue_depth,
            deep_compute: false,
        })
        .with_profile(Arc::clone(&self.profile));
        match &self.trace {
            Some(t) => exec.with_trace(Arc::clone(t)),
            None => exec,
        }
    }
}

impl CompactionExec for AdaptiveExec {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn register_metrics(&self, registry: &pcp_obs::Registry) {
        AdaptiveExec::register_metrics(self, registry);
    }

    fn compact(&self, req: &CompactionRequest) -> TableResult<Vec<Arc<FileMetadata>>> {
        let occ = self.profile.last_occupancy();
        let tokens = req.grant.stage_tokens();
        let choice = Self::choose(&self.cfg, &occ, req.input_bytes(), tokens);
        self.choices[choice.index()].fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &self.trace {
            t.record(
                "adaptive_choice",
                &[
                    ("choice", choice.index() as u64), // index into CHOICE_LABELS
                    ("input_bytes", req.input_bytes()),
                    (
                        "stage_tokens",
                        if tokens == usize::MAX { 0 } else { tokens as u64 },
                    ),
                    ("bottleneck_ppm", (occ.bottleneck() * 1e6) as u64),
                ],
            );
        }
        match choice {
            ExecChoice::Simple => SimpleMergeExec.compact(req),
            ExecChoice::Pcp => self.pipelined(1, 1).compact(req),
            ExecChoice::CPpcp(k) => self.pipelined(1, k).compact(req),
            ExecChoice::SPpcp(k) => self.pipelined(k, 1).compact(req),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn occ(read: f64, compute: f64, write: f64) -> Occupancy {
        Occupancy {
            read,
            compute,
            write,
            wall: Duration::from_millis(100),
        }
    }

    fn cfg() -> AdaptiveConfig {
        AdaptiveConfig {
            small_job_bytes: 4 << 20,
            parallel_threshold: 0.7,
            max_workers: 4,
            ..AdaptiveConfig::default()
        }
    }

    #[test]
    fn small_jobs_take_the_simple_merge() {
        let c = cfg();
        let choice = AdaptiveExec::choose(&c, &occ(0.9, 0.9, 0.9), 1 << 20, usize::MAX);
        assert_eq!(choice, ExecChoice::Simple);
    }

    #[test]
    fn first_compaction_defaults_to_pcp() {
        let c = cfg();
        let none = Occupancy {
            read: 0.0,
            compute: 0.0,
            write: 0.0,
            wall: Duration::ZERO,
        };
        assert_eq!(
            AdaptiveExec::choose(&c, &none, 64 << 20, usize::MAX),
            ExecChoice::Pcp
        );
    }

    #[test]
    fn compute_bound_widens_to_c_ppcp() {
        let c = cfg();
        assert_eq!(
            AdaptiveExec::choose(&c, &occ(0.4, 0.95, 0.3), 64 << 20, usize::MAX),
            ExecChoice::CPpcp(4)
        );
    }

    #[test]
    fn read_bound_widens_to_s_ppcp() {
        let c = cfg();
        assert_eq!(
            AdaptiveExec::choose(&c, &occ(0.95, 0.4, 0.3), 64 << 20, usize::MAX),
            ExecChoice::SPpcp(4)
        );
    }

    #[test]
    fn balanced_or_write_bound_stays_pcp() {
        let c = cfg();
        assert_eq!(
            AdaptiveExec::choose(&c, &occ(0.5, 0.5, 0.5), 64 << 20, usize::MAX),
            ExecChoice::Pcp
        );
        assert_eq!(
            AdaptiveExec::choose(&c, &occ(0.3, 0.4, 0.95), 64 << 20, usize::MAX),
            ExecChoice::Pcp,
            "a write bottleneck cannot be widened: S7 owns table rotation"
        );
    }

    #[test]
    fn grant_caps_the_worker_count() {
        let c = cfg();
        assert_eq!(
            AdaptiveExec::choose(&c, &occ(0.4, 0.95, 0.3), 64 << 20, 2),
            ExecChoice::CPpcp(2)
        );
        // A single token means no parallel stage is possible at all.
        assert_eq!(
            AdaptiveExec::choose(&c, &occ(0.4, 0.95, 0.3), 64 << 20, 1),
            ExecChoice::Pcp
        );
    }

    #[test]
    fn choice_is_deterministic_for_a_fixed_snapshot() {
        let c = cfg();
        let snapshot = occ(0.2, 0.85, 0.4);
        let first = AdaptiveExec::choose(&c, &snapshot, 32 << 20, 3);
        for _ in 0..100 {
            assert_eq!(AdaptiveExec::choose(&c, &snapshot, 32 << 20, 3), first);
        }
        assert_eq!(first, ExecChoice::CPpcp(3));
    }
}
