//! Sub-task planning (paper §III-B).
//!
//! PCP "partitions the compaction key range into multiple sub-key ranges;
//! each sub-key range consists of one or more data blocks". Because the
//! data blocks of one component never overlap, sub-tasks are independent —
//! that independence is the parallelism every executor exploits.
//!
//! The planner takes the data-block metadata of every input *run* (one run
//! per input table; runs are internally sorted and disjoint) and produces
//! ordered sub-tasks such that:
//!
//! 1. every input block lands in exactly one sub-task, preserving per-run
//!    order (blocks of one run inside a sub-task are contiguous);
//! 2. sub-key ranges are disjoint and ordered: the largest user key of
//!    sub-task *i* is strictly below the smallest user key of *i+1*;
//! 3. no user key's version chain is split across sub-tasks (so the
//!    version-visibility filter can run per sub-task);
//! 4. each sub-task carries ≈ `target_bytes` of stored data, except where
//!    overlap clusters force more.
//!
//! The algorithm sweeps all block intervals in user-key order, grouping
//! overlapping (or key-sharing) intervals into indivisible *clusters*, then
//! packs clusters into sub-tasks up to the size target.

use pcp_sstable::key::user_key;
use pcp_sstable::table::BlockMeta;

/// Block list of one input run (one table), in key order.
pub type RunBlocks = Vec<BlockMeta>;

/// One unit of pipelined work: a disjoint sub-key range with its blocks.
#[derive(Debug, Clone)]
pub struct SubTask {
    /// Position in key order; the write stage resequences by this.
    pub index: usize,
    /// Blocks per run (parallel to the planner's input), each contiguous
    /// and in key order. Runs without blocks in this range are empty.
    pub blocks: Vec<Vec<BlockMeta>>,
    /// Stored (compressed, incl. trailers) bytes in this sub-task.
    pub bytes: u64,
}

impl SubTask {
    /// Smallest user key covered.
    pub fn first_user_key(&self) -> &[u8] {
        self.blocks
            .iter()
            .flatten()
            .map(|b| user_key(&b.first_key))
            .min()
            .expect("non-empty sub-task")
    }

    /// Largest user key covered.
    pub fn last_user_key(&self) -> &[u8] {
        self.blocks
            .iter()
            .flatten()
            .map(|b| user_key(&b.last_key))
            .max()
            .expect("non-empty sub-task")
    }

    /// Total number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    /// Total entries across blocks.
    pub fn entry_count(&self) -> u64 {
        self.blocks.iter().flatten().map(|b| b.entries).sum()
    }
}

#[derive(Debug, Clone)]
struct Interval {
    run: usize,
    /// Block index within the run.
    idx: usize,
    first: Vec<u8>,
    last: Vec<u8>,
    bytes: u64,
}

/// Partitions `runs` into sub-tasks of ≈ `target_bytes` stored bytes.
pub fn plan_subtasks(runs: &[RunBlocks], target_bytes: u64) -> Vec<SubTask> {
    assert!(target_bytes > 0, "target_bytes must be positive");
    let mut intervals: Vec<Interval> = Vec::new();
    for (run, blocks) in runs.iter().enumerate() {
        for (idx, b) in blocks.iter().enumerate() {
            debug_assert!(idx == 0 || user_key(&blocks[idx - 1].last_key) <= user_key(&b.first_key));
            intervals.push(Interval {
                run,
                idx,
                first: user_key(&b.first_key).to_vec(),
                last: user_key(&b.last_key).to_vec(),
                bytes: b.stored_size(),
            });
        }
    }
    if intervals.is_empty() {
        return Vec::new();
    }
    intervals.sort_by(|a, b| a.first.cmp(&b.first).then(a.last.cmp(&b.last)));

    // Sweep into clusters: a new cluster starts only when the next interval
    // begins strictly after everything seen so far (`>` not `>=`, so blocks
    // sharing a boundary user key stay together — rule 3).
    let mut clusters: Vec<(Vec<Interval>, u64)> = Vec::new();
    let mut current: Vec<Interval> = Vec::new();
    let mut current_end: Vec<u8> = Vec::new();
    let mut current_bytes = 0u64;
    for iv in intervals {
        if !current.is_empty() && iv.first > current_end {
            clusters.push((std::mem::take(&mut current), current_bytes));
            current_bytes = 0;
        }
        if iv.last > current_end {
            current_end = iv.last.clone();
        }
        current_bytes += iv.bytes;
        current.push(iv);
    }
    clusters.push((current, current_bytes));

    // Pack clusters into sub-tasks.
    let mut subtasks = Vec::new();
    let mut acc: Vec<Interval> = Vec::new();
    let mut acc_bytes = 0u64;
    let flush =
        |acc: &mut Vec<Interval>, acc_bytes: &mut u64, subtasks: &mut Vec<SubTask>| {
            if acc.is_empty() {
                return;
            }
            let mut blocks: Vec<Vec<BlockMeta>> = vec![Vec::new(); runs.len()];
            let mut members: Vec<&Interval> = acc.iter().collect();
            members.sort_by_key(|iv| (iv.run, iv.idx));
            for iv in members {
                blocks[iv.run].push(runs[iv.run][iv.idx].clone());
            }
            subtasks.push(SubTask {
                index: subtasks.len(),
                blocks,
                bytes: *acc_bytes,
            });
            acc.clear();
            *acc_bytes = 0;
        };
    for (cluster, bytes) in clusters {
        acc.extend(cluster);
        acc_bytes += bytes;
        if acc_bytes >= target_bytes {
            flush(&mut acc, &mut acc_bytes, &mut subtasks);
        }
    }
    flush(&mut acc, &mut acc_bytes, &mut subtasks);
    subtasks
}

/// Asserts the planner's guarantees against the inputs (used by tests and
/// debug builds of the executors).
pub fn check_plan(runs: &[RunBlocks], subtasks: &[SubTask]) -> Result<(), String> {
    // Rule 1: exact coverage, contiguous and ordered per run.
    for (r, run) in runs.iter().enumerate() {
        let mut covered = Vec::new();
        for st in subtasks {
            covered.extend(st.blocks[r].iter().cloned());
        }
        if covered.len() != run.len() {
            return Err(format!(
                "run {r}: {} blocks planned, {} in input",
                covered.len(),
                run.len()
            ));
        }
        for (a, b) in covered.iter().zip(run.iter()) {
            if a != b {
                return Err(format!("run {r}: block order or identity mismatch"));
            }
        }
    }
    // Rules 2 + 3: strictly increasing, non-touching user-key ranges.
    for w in subtasks.windows(2) {
        if w[0].last_user_key() >= w[1].first_user_key() {
            return Err(format!(
                "sub-tasks {} and {} share or overlap user keys",
                w[0].index, w[1].index
            ));
        }
    }
    for (i, st) in subtasks.iter().enumerate() {
        if st.index != i {
            return Err("sub-task indices must be dense and ordered".into());
        }
        if st.block_count() == 0 {
            return Err("empty sub-task".into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcp_sstable::key::{make_internal_key, ValueType};
    use pcp_sstable::table::BlockHandle;

    /// Builds a block meta covering user keys [lo, hi] with given size.
    fn block(lo: &str, hi: &str, bytes: u64) -> BlockMeta {
        BlockMeta {
            handle: BlockHandle {
                offset: 0,
                size: bytes.saturating_sub(5),
            },
            first_key: make_internal_key(lo.as_bytes(), 10, ValueType::Value),
            last_key: make_internal_key(hi.as_bytes(), 1, ValueType::Value),
            entries: 10,
        }
    }

    #[test]
    fn single_run_packs_by_size() {
        let run: RunBlocks = (0..10)
            .map(|i| block(&format!("k{i:02}a"), &format!("k{i:02}z"), 100))
            .collect();
        let plan = plan_subtasks(std::slice::from_ref(&run), 250);
        check_plan(&[run], &plan).unwrap();
        assert!(plan.len() >= 3, "10 blocks * 100B at 250B target: {}", plan.len());
        for st in &plan[..plan.len() - 1] {
            assert!(st.bytes >= 250);
        }
    }

    #[test]
    fn overlapping_runs_cluster_together() {
        // Upper block [b, m] overlaps lower blocks [a, c] and [k, n]:
        // all three must land in one sub-task.
        let upper = vec![block("b", "m", 100)];
        let lower = vec![block("a", "c", 100), block("k", "n", 100), block("p", "q", 100)];
        let plan = plan_subtasks(&[upper.clone(), lower.clone()], 1);
        check_plan(&[upper, lower], &plan).unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].block_count(), 3);
        assert_eq!(plan[1].block_count(), 1);
        assert_eq!(plan[1].first_user_key(), b"p");
    }

    #[test]
    fn shared_boundary_user_key_never_splits() {
        // Upper ends at "k"; lower starts at "k": same user key, one task.
        let upper = vec![block("a", "k", 100)];
        let lower = vec![block("k", "z", 100)];
        let plan = plan_subtasks(&[upper.clone(), lower.clone()], 1);
        check_plan(&[upper, lower], &plan).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].block_count(), 2);
    }

    #[test]
    fn disjoint_runs_interleave_in_key_order() {
        let a = vec![block("a", "b", 50), block("e", "f", 50)];
        let b = vec![block("c", "d", 50), block("g", "h", 50)];
        let plan = plan_subtasks(&[a.clone(), b.clone()], 1);
        check_plan(&[a, b], &plan).unwrap();
        assert_eq!(plan.len(), 4);
        let firsts: Vec<&[u8]> = plan.iter().map(|s| s.first_user_key()).collect();
        assert_eq!(firsts, vec![b"a".as_slice(), b"c", b"e", b"g"]);
    }

    #[test]
    fn empty_input_plans_nothing() {
        assert!(plan_subtasks(&[], 1024).is_empty());
        assert!(plan_subtasks(&[Vec::new(), Vec::new()], 1024).is_empty());
    }

    #[test]
    fn one_giant_cluster_is_one_subtask() {
        // Every block overlaps the next: nothing can be split.
        let upper: RunBlocks = (0..5)
            .map(|i| block(&format!("k{i}"), &format!("k{}", i + 1), 1000))
            .collect();
        let plan = plan_subtasks(std::slice::from_ref(&upper), 100);
        check_plan(&[upper], &plan).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].block_count(), 5);
        assert!(plan[0].bytes >= 5000);
    }

    #[test]
    fn large_target_yields_single_subtask() {
        let run: RunBlocks = (0..20)
            .map(|i| block(&format!("k{i:02}a"), &format!("k{i:02}z"), 100))
            .collect();
        let plan = plan_subtasks(std::slice::from_ref(&run), u64::MAX);
        check_plan(&[run], &plan).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].entry_count(), 200);
    }

    #[test]
    fn three_runs_l0_style_overlap() {
        // Three L0-style runs all covering the same range: one cluster.
        let runs: Vec<RunBlocks> = (0..3)
            .map(|_| vec![block("a", "m", 100), block("n", "z", 100)])
            .collect();
        let plan = plan_subtasks(&runs, 100);
        check_plan(&runs, &plan).unwrap();
        assert_eq!(plan.len(), 2, "split between m and n only");
        assert_eq!(plan[0].block_count(), 3);
        assert_eq!(plan[1].block_count(), 3);
    }
}
