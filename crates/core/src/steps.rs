//! The seven compaction steps as individually timed operations.
//!
//! Each function covers one or more steps of paper Fig. 2 and records its
//! time in the shared [`CompactionProfile`]:
//!
//! * [`read_subtask`] — S1 (one span read per input run touched);
//! * [`compute_subtask`] — S2 CHECKSUM, S3 DECOMPRESS, S4 SORT/MERGE,
//!   S5 COMPRESS, S6 RE-CHECKSUM;
//! * the write stage (S7) lives in [`crate::pipeline::SealedWriter`], since
//!   it owns the output tables.

use crate::planner::SubTask;
use crate::profile::{CompactionProfile, Step};
use bytes::Bytes;
use pcp_sstable::bloom::BloomFilter;
use pcp_sstable::key::{internal_key_cmp, user_key};
use pcp_sstable::table::{
    compress_block, decompress_block, make_trailer, verify_block,
    CompressionKind, BLOCK_TRAILER_SIZE,
};
use pcp_sstable::{Block, BlockBuilder, BlockIter, KvIter, MergingIter, TableReader};
use pcp_compaction::VersionKeepFilter;
use pcp_sstable::Result as TableResult;
use std::sync::Arc;
use std::time::Instant;

/// Raw (still compressed + trailed) blocks of one sub-task, grouped per run.
#[derive(Debug)]
pub struct SubTaskData {
    pub index: usize,
    /// Parallel to the planner's runs: raw block bytes in key order.
    pub raw_blocks: Vec<Vec<Bytes>>,
}

/// One output block after S5/S6, ready for pure-I/O append.
#[derive(Debug, Clone)]
pub struct SealedBlock {
    /// payload ++ 5-byte trailer.
    pub raw: Vec<u8>,
    pub first_key: Vec<u8>,
    pub last_key: Vec<u8>,
    pub entries: u64,
    /// Uncompressed contents length.
    pub raw_len: u64,
    /// Bloom hashes of the block's user keys.
    pub bloom_hashes: Vec<u64>,
}

/// A sub-task after the compute stage.
#[derive(Debug)]
pub struct ComputedSubTask {
    pub index: usize,
    pub blocks: Vec<SealedBlock>,
}

/// Knobs for the compute stage (match the engine's table options).
#[derive(Debug, Clone)]
pub struct ComputeConfig {
    pub block_size: usize,
    pub restart_interval: usize,
    pub compression: CompressionKind,
    pub smallest_snapshot: u64,
    pub bottom_level: bool,
}

/// Step S1: reads every input block of `subtask`, one contiguous span read
/// per run (the paper's "I/O size is equal to the sub-task size").
pub fn read_subtask(
    readers: &[Arc<TableReader>],
    subtask: &SubTask,
    profile: &CompactionProfile,
) -> TableResult<SubTaskData> {
    let t0 = Instant::now();
    let mut raw_blocks: Vec<Vec<Bytes>> = Vec::with_capacity(subtask.blocks.len());
    let mut bytes_read = 0u64;
    for (run, blocks) in subtask.blocks.iter().enumerate() {
        if blocks.is_empty() {
            raw_blocks.push(Vec::new());
            continue;
        }
        let first = blocks.first().unwrap().handle;
        let last = blocks.last().unwrap().handle;
        let span = readers[run].read_raw_span(first, last)?;
        bytes_read += span.len() as u64;
        let base = first.offset;
        let mut run_raw = Vec::with_capacity(blocks.len());
        for b in blocks {
            let start = (b.handle.offset - base) as usize;
            let end = start + b.handle.size as usize + BLOCK_TRAILER_SIZE;
            run_raw.push(span.slice(start..end));
        }
        raw_blocks.push(run_raw);
    }
    profile.record(Step::Read, t0.elapsed());
    profile.add_input_bytes(bytes_read);
    profile.add_blocks(subtask.block_count() as u64);
    Ok(SubTaskData {
        index: subtask.index,
        raw_blocks,
    })
}

/// Sequential cursor over a run's decoded blocks (they are already in key
/// order and disjoint, so concatenation suffices).
struct BlocksIter {
    blocks: Vec<Block>,
    pos: usize,
    cur: Option<BlockIter>,
}

impl BlocksIter {
    fn new(blocks: Vec<Block>) -> BlocksIter {
        BlocksIter {
            blocks,
            pos: 0,
            cur: None,
        }
    }

    fn advance_block(&mut self) {
        while self.pos < self.blocks.len() {
            let mut it = self.blocks[self.pos].iter(internal_key_cmp);
            it.seek_to_first();
            self.pos += 1;
            if it.valid() {
                self.cur = Some(it);
                return;
            }
        }
        self.cur = None;
    }
}

impl KvIter for BlocksIter {
    fn valid(&self) -> bool {
        self.cur.as_ref().is_some_and(|c| c.valid())
    }

    fn seek_to_first(&mut self) {
        self.pos = 0;
        self.cur = None;
        self.advance_block();
    }

    fn seek(&mut self, target: &[u8]) {
        // Rarely used in the compaction path; linear block scan.
        self.seek_to_first();
        while self.valid() && internal_key_cmp(self.key(), target) == std::cmp::Ordering::Less
        {
            self.next();
        }
    }

    fn next(&mut self) {
        if let Some(c) = &mut self.cur {
            c.next();
            if !c.valid() {
                self.advance_block();
            }
        }
    }

    fn key(&self) -> &[u8] {
        self.cur.as_ref().expect("valid").key()
    }

    fn value(&self) -> &[u8] {
        self.cur.as_ref().expect("valid").value()
    }
}

/// A sub-task after S2+S3: verified, decompressed, decoded blocks per run.
#[derive(Debug)]
pub struct DecodedSubTask {
    pub index: usize,
    pub runs: Vec<Vec<Block>>,
}

/// One merged-but-unsealed block: (contents, first_key, last_key, entries,
/// bloom hashes).
pub type MergedBlock = (Vec<u8>, Vec<u8>, Vec<u8>, u64, Vec<u64>);

/// A sub-task after S4: merged, filtered, re-blocked — not yet sealed.
#[derive(Debug)]
pub struct MergedSubTask {
    pub index: usize,
    pub blocks: Vec<MergedBlock>,
}

/// Steps S2 (CHECKSUM) + S3 (DECOMPRESS) for one sub-task.
pub fn verify_decompress(
    data: SubTaskData,
    profile: &CompactionProfile,
) -> TableResult<DecodedSubTask> {
    // S2 CHECKSUM: verify every raw block.
    let t0 = Instant::now();
    let mut verified: Vec<Vec<(Bytes, CompressionKind, usize)>> =
        Vec::with_capacity(data.raw_blocks.len());
    for run in &data.raw_blocks {
        let mut v = Vec::with_capacity(run.len());
        for raw in run {
            let (payload, kind) = verify_block(raw)?;
            let plen = payload.len();
            v.push((raw.slice(0..plen), kind, plen));
        }
        verified.push(v);
    }
    profile.record(Step::Checksum, t0.elapsed());

    // S3 DECOMPRESS: restore block contents.
    let t0 = Instant::now();
    let mut decoded_runs: Vec<Vec<Block>> = Vec::with_capacity(verified.len());
    for run in &verified {
        let mut blocks = Vec::with_capacity(run.len());
        for (payload, kind, _) in run {
            let contents = decompress_block(payload, *kind)?;
            let block = Block::new(Bytes::from(contents))?;
            blocks.push(block);
        }
        decoded_runs.push(blocks);
    }
    profile.record(Step::Decompress, t0.elapsed());
    Ok(DecodedSubTask {
        index: data.index,
        runs: decoded_runs,
    })
}

/// Step S4 (SORT/MERGE): k-way merge + version filter + new block building.
pub fn merge_subtask(
    decoded: DecodedSubTask,
    cfg: &ComputeConfig,
    profile: &CompactionProfile,
) -> TableResult<MergedSubTask> {
    let t0 = Instant::now();
    let mut entries_in = 0u64;
    let children: Vec<Box<dyn KvIter>> = decoded
        .runs
        .into_iter()
        .filter(|r| !r.is_empty())
        .map(|r| Box::new(BlocksIter::new(r)) as Box<dyn KvIter>)
        .collect();
    let mut merged = MergingIter::new(children, internal_key_cmp);
    let mut filter = VersionKeepFilter::new(cfg.smallest_snapshot, cfg.bottom_level);
    let mut builder = BlockBuilder::new(cfg.restart_interval);
    let mut pending: Vec<MergedBlock> = Vec::new();
    let mut first_key: Vec<u8> = Vec::new();
    let mut hashes: Vec<u64> = Vec::new();
    merged.seek_to_first();
    while merged.valid() {
        entries_in += 1;
        if filter.keep(merged.key()) {
            if builder.is_empty() {
                first_key = merged.key().to_vec();
            }
            hashes.push(BloomFilter::hash_key(user_key(merged.key())));
            builder.add(merged.key(), merged.value());
            if builder.size_estimate() >= cfg.block_size {
                let last_key = builder.last_key().to_vec();
                let entries = builder.entries() as u64;
                let contents = builder.finish();
                pending.push((
                    contents,
                    std::mem::take(&mut first_key),
                    last_key,
                    entries,
                    std::mem::take(&mut hashes),
                ));
            }
        }
        merged.next();
    }
    if !builder.is_empty() {
        let last_key = builder.last_key().to_vec();
        let entries = builder.entries() as u64;
        let contents = builder.finish();
        pending.push((contents, first_key, last_key, entries, hashes));
    }
    profile.record(Step::Sort, t0.elapsed());
    profile.add_entries_in(entries_in);
    Ok(MergedSubTask {
        index: decoded.index,
        blocks: pending,
    })
}

/// Steps S5 (COMPRESS) + S6 (RE-CHECKSUM): seal merged blocks for pure-I/O
/// append.
pub fn seal_subtask(
    merged: MergedSubTask,
    cfg: &ComputeConfig,
    profile: &CompactionProfile,
) -> TableResult<ComputedSubTask> {
    // S5 COMPRESS.
    let t0 = Instant::now();
    // (payload, kind, first_key, last_key, entries, raw_len, bloom hashes).
    type CompressedBlock = (Vec<u8>, CompressionKind, Vec<u8>, Vec<u8>, u64, u64, Vec<u64>);
    let mut compressed: Vec<CompressedBlock> = Vec::with_capacity(merged.blocks.len());
    let mut raw_bytes = 0u64;
    let mut entries_out = 0u64;
    for (contents, first, last, entries, h) in merged.blocks {
        raw_bytes += contents.len() as u64;
        entries_out += entries;
        let (payload, kind) = compress_block(&contents, cfg.compression);
        compressed.push((payload, kind, first, last, entries, contents.len() as u64, h));
    }
    profile.record(Step::Compress, t0.elapsed());
    profile.add_raw_bytes(raw_bytes);
    profile.add_entries_out(entries_out);

    // S6 RE-CHECKSUM.
    let t0 = Instant::now();
    let mut blocks = Vec::with_capacity(compressed.len());
    for (mut payload, kind, first, last, entries, raw_len, h) in compressed {
        let trailer = make_trailer(&payload, kind);
        payload.extend_from_slice(&trailer);
        blocks.push(SealedBlock {
            raw: payload,
            first_key: first,
            last_key: last,
            entries,
            raw_len,
            bloom_hashes: h,
        });
    }
    profile.record(Step::ReChecksum, t0.elapsed());

    Ok(ComputedSubTask {
        index: merged.index,
        blocks,
    })
}

/// Steps S2–S6 for one sub-task (the paper's single compute stage):
/// verify, decompress, merge+filter into new blocks, compress,
/// re-checksum.
pub fn compute_subtask(
    data: SubTaskData,
    cfg: &ComputeConfig,
    profile: &CompactionProfile,
) -> TableResult<ComputedSubTask> {
    let decoded = verify_decompress(data, profile)?;
    let merged = merge_subtask(decoded, cfg, profile)?;
    seal_subtask(merged, cfg, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::plan_subtasks;
    use pcp_sstable::key::{make_internal_key, ValueType, MAX_SEQUENCE};
    use pcp_sstable::{TableBuilder, TableBuilderOptions};
    use pcp_storage::{EnvRef, SimDevice, SimEnv};

    fn env() -> EnvRef {
        Arc::new(SimEnv::new(Arc::new(SimDevice::mem(128 << 20))))
    }

    fn build_table(env: &EnvRef, name: &str, n: usize, seq0: u64) -> Arc<TableReader> {
        let f = env.create(name).unwrap();
        let mut b = TableBuilder::new(f, TableBuilderOptions::default());
        for i in 0..n {
            let ik = make_internal_key(
                format!("key{i:06}").as_bytes(),
                seq0 + i as u64,
                ValueType::Value,
            );
            b.add(&ik, format!("value-{i}-{}", "y".repeat(60)).as_bytes())
                .unwrap();
        }
        b.finish().unwrap();
        Arc::new(TableReader::open(env.open(name).unwrap()).unwrap())
    }

    fn cfg() -> ComputeConfig {
        ComputeConfig {
            block_size: 4096,
            restart_interval: 16,
            compression: CompressionKind::Lz,
            smallest_snapshot: MAX_SEQUENCE,
            bottom_level: true,
        }
    }

    #[test]
    fn read_then_compute_roundtrips_entries() {
        let env = env();
        let table = build_table(&env, "t", 2000, 1);
        let runs = vec![table.block_metas().unwrap()];
        let plan = plan_subtasks(&runs, 16 << 10);
        assert!(plan.len() > 1);
        let profile = CompactionProfile::new();
        let mut total_entries = 0u64;
        let readers = vec![Arc::clone(&table)];
        for st in &plan {
            let data = read_subtask(&readers, st, &profile).unwrap();
            let computed = compute_subtask(data, &cfg(), &profile).unwrap();
            assert_eq!(computed.index, st.index);
            total_entries += computed.blocks.iter().map(|b| b.entries).sum::<u64>();
            // Each sealed block must verify and decompress.
            for sb in &computed.blocks {
                let (payload, kind) = verify_block(&sb.raw).unwrap();
                let contents = decompress_block(payload, kind).unwrap();
                assert_eq!(contents.len() as u64, sb.raw_len);
            }
        }
        assert_eq!(total_entries, 2000);
        let snap = profile.snapshot();
        assert_eq!(snap.entries_in, 2000);
        assert_eq!(snap.entries_out, 2000);
        assert!(snap.time(Step::Read) > std::time::Duration::ZERO);
        assert!(snap.time(Step::Sort) > std::time::Duration::ZERO);
        assert!(snap.input_bytes > 0);
    }

    #[test]
    fn merge_two_runs_newest_wins() {
        let env = env();
        // Same keys, different sequences: upper (newer) must win.
        let newer = build_table(&env, "a", 500, 10_000);
        let older = build_table(&env, "b", 500, 1);
        let runs = vec![
            newer.block_metas().unwrap(),
            older.block_metas().unwrap(),
        ];
        let plan = plan_subtasks(&runs, u64::MAX);
        assert_eq!(plan.len(), 1);
        let profile = CompactionProfile::new();
        let readers = vec![newer, older];
        let data = read_subtask(&readers, &plan[0], &profile).unwrap();
        let computed = compute_subtask(data, &cfg(), &profile).unwrap();
        let survivors: u64 = computed.blocks.iter().map(|b| b.entries).sum();
        assert_eq!(survivors, 500, "one version per user key survives");
        // All surviving sequences are the newer ones.
        for sb in &computed.blocks {
            let (payload, kind) = verify_block(&sb.raw).unwrap();
            let contents = decompress_block(payload, kind).unwrap();
            let block = Block::new(Bytes::from(contents)).unwrap();
            let mut it = block.iter(internal_key_cmp);
            it.seek_to_first();
            while it.valid() {
                let p = pcp_sstable::parse_internal_key(it.key()).unwrap();
                assert!(p.sequence >= 10_000);
                it.next();
            }
        }
    }

    #[test]
    fn blocks_iter_concatenates() {
        let mk = |keys: &[&str]| {
            let mut bb = BlockBuilder::new(4);
            for k in keys {
                bb.add(
                    &make_internal_key(k.as_bytes(), 1, ValueType::Value),
                    b"v",
                );
            }
            Block::new(Bytes::from(bb.finish())).unwrap()
        };
        let mut it = BlocksIter::new(vec![mk(&["a", "b"]), mk(&["c"]), mk(&["d", "e"])]);
        it.seek_to_first();
        let mut keys = Vec::new();
        while it.valid() {
            keys.push(user_key(it.key()).to_vec());
            it.next();
        }
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec(), b"e".to_vec()]);
    }

    #[test]
    fn corrupt_raw_block_fails_checksum_step() {
        let env = env();
        let table = build_table(&env, "t", 100, 1);
        let runs = vec![table.block_metas().unwrap()];
        let plan = plan_subtasks(&runs, u64::MAX);
        let profile = CompactionProfile::new();
        let mut data = read_subtask(&[Arc::clone(&table)], &plan[0], &profile).unwrap();
        // Corrupt the first raw block.
        let mut broken = data.raw_blocks[0][0].to_vec();
        broken[0] ^= 0xFF;
        data.raw_blocks[0][0] = Bytes::from(broken);
        assert!(compute_subtask(data, &cfg(), &profile).is_err());
    }
}
