//! # pcp-core
//!
//! The paper's contribution: **Pipelined Compaction for the LSM-tree**
//! (Zhang et al., IPDPS 2014), implemented as drop-in
//! [`pcp_compaction::CompactionExec`] executors plus the supporting machinery.
//!
//! One compaction merges the key-value entries of a key range spanning two
//! adjacent components. The work decomposes into seven steps per unit of
//! data (Fig. 2):
//!
//! | step | name        | resource |
//! |------|-------------|----------|
//! | S1   | READ        | disk     |
//! | S2   | CHECKSUM    | CPU      |
//! | S3   | DECOMPRESS  | CPU      |
//! | S4   | SORT/MERGE  | CPU      |
//! | S5   | COMPRESS    | CPU      |
//! | S6   | RE-CHECKSUM | CPU      |
//! | S7   | WRITE       | disk     |
//!
//! * [`planner`] — partitions the compaction key range into disjoint
//!   sub-key ranges ("sub-tasks") aligned to data-block boundaries of both
//!   components, never splitting one user key across sub-tasks.
//! * [`steps`] — the seven steps as individually timed functions.
//! * [`pipeline`] — the executors: [`ScpExec`] (sequential baseline) and
//!   [`PipelinedExec`] (3-stage read|compute|write pipeline, configurable
//!   into PCP, C-PPCP — k compute workers with a resequencer — and S-PPCP —
//!   k read lanes over RAID0).
//! * [`model`] — the closed-form bandwidth equations Eq. 1–7.
//! * [`profile`] — per-step time accounting used by the paper's breakdown
//!   figures (Fig. 5/8/9).
//! * [`adaptive`] — [`AdaptiveExec`], the production default: picks the
//!   pipeline shape per compaction from the previous compaction's
//!   occupancy, the input size, and the scheduler's resource grant.

pub mod adaptive;
pub mod model;
pub mod pipeline;
pub mod planner;
pub mod profile;
pub mod steps;

pub use adaptive::{AdaptiveConfig, AdaptiveExec, ExecChoice, CHOICE_LABELS};
pub use model::{Bottleneck, StepTimes};
pub use pipeline::{PipelineConfig, PipelinedExec, ScpExec, SealedWriter};
pub use planner::{check_plan, plan_subtasks, RunBlocks, SubTask};
pub use profile::{CompactionProfile, Occupancy, ProfileSnapshot, Step};
pub use steps::{compute_subtask, read_subtask, ComputeConfig, ComputedSubTask, SealedBlock, SubTaskData};
