//! The paper's analytical bandwidth model (§III, Eq. 1–7).
//!
//! `t[i]` is the execution time of step S(i+1) for one sub-task of length
//! `l` bytes. The model predicts compaction bandwidth (bytes/second) for
//! each procedure and bounds the achievable parallel speedups. The `model`
//! bench harness cross-validates these closed forms against both the
//! discrete-event simulator and the real executors.

/// Per-sub-task step times in seconds, `t[0] == t_S1 … t[6] == t_S7`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepTimes {
    pub t: [f64; 7],
}

impl StepTimes {
    /// Wraps measured step times.
    pub fn new(t: [f64; 7]) -> StepTimes {
        assert!(t.iter().all(|&x| x >= 0.0), "step times must be non-negative");
        StepTimes { t }
    }

    /// t_S1: read time.
    pub fn read(&self) -> f64 {
        self.t[0]
    }

    /// Σ t_S2..t_S6: the compute stage.
    pub fn compute(&self) -> f64 {
        self.t[1..6].iter().sum()
    }

    /// t_S7: write time.
    pub fn write(&self) -> f64 {
        self.t[6]
    }

    /// Σ all seven steps.
    pub fn total(&self) -> f64 {
        self.t.iter().sum()
    }

    /// max{t_S1, t_S7}: the slower I/O step.
    pub fn max_io(&self) -> f64 {
        self.read().max(self.write())
    }
}

/// Which resource limits the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// An I/O stage is the longest (HDD-like configurations).
    Io,
    /// The compute stage is the longest (SSD-like configurations).
    Cpu,
}

/// Classifies the PCP bottleneck stage (paper §III-B, Fig. 6).
pub fn classify(times: &StepTimes) -> Bottleneck {
    if times.compute() >= times.max_io() {
        Bottleneck::Cpu
    } else {
        Bottleneck::Io
    }
}

/// Eq. 1 — SCP bandwidth: `l / Σ t_Si`.
pub fn b_scp(l: f64, times: &StepTimes) -> f64 {
    l / times.total()
}

/// Eq. 2 — PCP bandwidth: `l / max{t_S1, Σ t_S2..6, t_S7}`.
pub fn b_pcp(l: f64, times: &StepTimes) -> f64 {
    l / times
        .read()
        .max(times.compute())
        .max(times.write())
}

/// Eq. 3 — ideal PCP speedup over SCP.
pub fn pcp_speedup(times: &StepTimes) -> f64 {
    b_pcp(1.0, times) / b_scp(1.0, times)
}

/// Eq. 4 — S-PPCP bandwidth with `k` disks:
/// `l / max{t_S1/k, Σ t_S2..6, t_S7/k}`.
pub fn b_sppcp(l: f64, times: &StepTimes, k: usize) -> f64 {
    let k = k as f64;
    l / (times.read() / k)
        .max(times.compute())
        .max(times.write() / k)
}

/// Eq. 5 — ideal S-PPCP speedup over PCP. Bounded by
/// `min{k, max{t_S1, t_S7} / Σ t_S2..6}`.
pub fn sppcp_speedup(times: &StepTimes, k: usize) -> f64 {
    b_sppcp(1.0, times, k) / b_pcp(1.0, times)
}

/// The cap on Eq. 5's speedup.
pub fn sppcp_speedup_bound(times: &StepTimes, k: usize) -> f64 {
    (k as f64).min(times.max_io() / times.compute())
}

/// Eq. 6 — C-PPCP bandwidth with `k` compute workers:
/// `l / max{t_S1, Σ t_S2..6 / k, t_S7}`.
pub fn b_cppcp(l: f64, times: &StepTimes, k: usize) -> f64 {
    l / times
        .read()
        .max(times.compute() / k as f64)
        .max(times.write())
}

/// Eq. 7 — ideal C-PPCP speedup over PCP. Bounded by
/// `min{k, Σ t_S2..6 / max{t_S1, t_S7}}`.
pub fn cppcp_speedup(times: &StepTimes, k: usize) -> f64 {
    b_cppcp(1.0, times, k) / b_pcp(1.0, times)
}

/// The cap on Eq. 7's speedup.
pub fn cppcp_speedup_bound(times: &StepTimes, k: usize) -> f64 {
    (k as f64).min(times.compute() / times.max_io())
}

/// Smallest disk count that turns an I/O-bound pipeline CPU-bound
/// (paper §III-C1: `k > max{t_S1, t_S7} / Σ t_S2..6`).
pub fn disks_to_cpu_bound(times: &StepTimes) -> usize {
    (times.max_io() / times.compute()).ceil().max(1.0) as usize
}

/// Smallest compute-worker count that turns a CPU-bound pipeline I/O-bound
/// (paper §III-C2: `k > Σ t_S2..6 / max{t_S1, t_S7}`).
pub fn cpus_to_io_bound(times: &StepTimes) -> usize {
    (times.compute() / times.max_io()).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    /// HDD-like: read dominates (seek-heavy), write buffered and cheap.
    fn hdd() -> StepTimes {
        StepTimes::new([0.40, 0.02, 0.01, 0.20, 0.12, 0.02, 0.15])
    }

    /// SSD-like: compute dominates, write slower than read.
    fn ssd() -> StepTimes {
        StepTimes::new([0.08, 0.02, 0.01, 0.20, 0.15, 0.02, 0.12])
    }

    #[test]
    fn classification_matches_fig6() {
        assert_eq!(classify(&hdd()), Bottleneck::Io);
        assert_eq!(classify(&ssd()), Bottleneck::Cpu);
    }

    #[test]
    fn pcp_always_at_least_as_fast_as_scp() {
        for times in [hdd(), ssd()] {
            assert!(b_pcp(1.0, &times) >= b_scp(1.0, &times));
            let s = pcp_speedup(&times);
            assert!(s >= 1.0);
            // Bounded by 3 (the pipeline depth).
            assert!(s <= 3.0 + 1e-9);
        }
    }

    #[test]
    fn eq2_matches_bottleneck_stage() {
        let times = hdd();
        // Bottleneck is read at 0.40s for l=1.
        assert!((b_pcp(1.0, &times) - 1.0 / 0.40).abs() < 1e-9);
        let times = ssd();
        // Bottleneck is compute at 0.40s.
        assert!((b_pcp(1.0, &times) - 1.0 / 0.40).abs() < 1e-9);
    }

    #[test]
    fn sppcp_saturates_when_cpu_becomes_bottleneck() {
        let times = hdd(); // compute = 0.37, read = 0.40
        let b1 = b_sppcp(1.0, &times, 1);
        let b2 = b_sppcp(1.0, &times, 2);
        let b8 = b_sppcp(1.0, &times, 8);
        assert!(b2 > b1);
        // With k=2, read/k = 0.20 < compute 0.37: already CPU-bound.
        assert!((b8 - b2).abs() < 1e-9, "extra disks can't help a CPU-bound pipeline");
        assert!((b8 - 1.0 / times.compute()).abs() < 1e-9);
    }

    #[test]
    fn cppcp_saturates_when_io_becomes_bottleneck() {
        let times = ssd(); // compute 0.40, write 0.12
        let b1 = b_cppcp(1.0, &times, 1);
        let b4 = b_cppcp(1.0, &times, 4);
        let b16 = b_cppcp(1.0, &times, 16);
        assert!(b4 > b1);
        // compute/4 = 0.10 < write 0.12: I/O-bound at k=4.
        assert!((b16 - b4).abs() < 1e-9);
        assert!((b16 - 1.0 / times.write()).abs() < 1e-9);
    }

    #[test]
    fn speedup_bounds_hold() {
        for times in [hdd(), ssd()] {
            for k in 1..=16 {
                assert!(
                    sppcp_speedup(&times, k) <= sppcp_speedup_bound(&times, k).max(1.0) + 1e-9,
                    "S-PPCP bound violated at k={k}"
                );
                assert!(
                    cppcp_speedup(&times, k) <= cppcp_speedup_bound(&times, k).max(1.0) + 1e-9,
                    "C-PPCP bound violated at k={k}"
                );
            }
        }
    }

    #[test]
    fn transformation_thresholds() {
        let times = hdd();
        let k = disks_to_cpu_bound(&times);
        // With k disks, the pipeline must be CPU-bound.
        assert!(times.max_io() / k as f64 <= times.compute() + 1e-12);
        let times = ssd();
        let k = cpus_to_io_bound(&times);
        assert!(times.compute() / k as f64 <= times.max_io() + 1e-12);
    }

    #[test]
    fn helpers_consistent() {
        let t = StepTimes::new([1.0, 0.1, 0.2, 0.3, 0.4, 0.5, 2.0]);
        assert!((t.compute() - 1.5).abs() < 1e-12);
        assert!((t.total() - 4.5).abs() < 1e-12);
        assert!((t.max_io() - 2.0).abs() < 1e-12);
    }
}
