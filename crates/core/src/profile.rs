//! Per-step time accounting.
//!
//! Every executor records how long each of the seven compaction steps took
//! and how many bytes/blocks/entries flowed through. The Fig. 5/8/9
//! harnesses read these to print execution-time breakdowns, and the
//! measured per-byte costs calibrate both the analytical model (Eq. 1–7)
//! and the discrete-event simulator.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// The seven compaction steps of paper Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    Read = 0,
    Checksum = 1,
    Decompress = 2,
    Sort = 3,
    Compress = 4,
    ReChecksum = 5,
    Write = 6,
}

impl Step {
    /// All steps in execution order.
    pub const ALL: [Step; 7] = [
        Step::Read,
        Step::Checksum,
        Step::Decompress,
        Step::Sort,
        Step::Compress,
        Step::ReChecksum,
        Step::Write,
    ];

    /// Short name used in reports ("read", "crc", "decomp", …), matching
    /// the paper's figure labels.
    pub fn label(&self) -> &'static str {
        match self {
            Step::Read => "read",
            Step::Checksum => "crc",
            Step::Decompress => "decomp",
            Step::Sort => "sort",
            Step::Compress => "comp",
            Step::ReChecksum => "re-crc",
            Step::Write => "write",
        }
    }

    /// True for the steps that use the I/O resource (S1, S7).
    pub fn is_io(&self) -> bool {
        matches!(self, Step::Read | Step::Write)
    }
}

/// Thread-safe accumulator shared by all pipeline stages of one (or many)
/// compactions.
#[derive(Debug, Default)]
pub struct CompactionProfile {
    step_nanos: [AtomicU64; 7],
    input_bytes: AtomicU64,
    output_bytes: AtomicU64,
    raw_bytes: AtomicU64,
    blocks: AtomicU64,
    entries_in: AtomicU64,
    entries_out: AtomicU64,
    subtasks: AtomicU64,
    compactions: AtomicU64,
    wall_nanos: AtomicU64,
}

impl CompactionProfile {
    /// A zeroed profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to step `s`.
    pub fn record(&self, s: Step, d: Duration) {
        self.step_nanos[s as usize].fetch_add(d.as_nanos() as u64, Relaxed);
    }

    pub fn add_input_bytes(&self, n: u64) {
        self.input_bytes.fetch_add(n, Relaxed);
    }

    pub fn add_output_bytes(&self, n: u64) {
        self.output_bytes.fetch_add(n, Relaxed);
    }

    pub fn add_raw_bytes(&self, n: u64) {
        self.raw_bytes.fetch_add(n, Relaxed);
    }

    pub fn add_blocks(&self, n: u64) {
        self.blocks.fetch_add(n, Relaxed);
    }

    pub fn add_entries_in(&self, n: u64) {
        self.entries_in.fetch_add(n, Relaxed);
    }

    pub fn add_entries_out(&self, n: u64) {
        self.entries_out.fetch_add(n, Relaxed);
    }

    pub fn add_subtasks(&self, n: u64) {
        self.subtasks.fetch_add(n, Relaxed);
    }

    /// Records one whole-compaction wall time.
    pub fn add_compaction(&self, wall: Duration) {
        self.compactions.fetch_add(1, Relaxed);
        self.wall_nanos.fetch_add(wall.as_nanos() as u64, Relaxed);
    }

    /// Plain-data snapshot.
    pub fn snapshot(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            step_time: std::array::from_fn(|i| {
                Duration::from_nanos(self.step_nanos[i].load(Relaxed))
            }),
            input_bytes: self.input_bytes.load(Relaxed),
            output_bytes: self.output_bytes.load(Relaxed),
            raw_bytes: self.raw_bytes.load(Relaxed),
            blocks: self.blocks.load(Relaxed),
            entries_in: self.entries_in.load(Relaxed),
            entries_out: self.entries_out.load(Relaxed),
            subtasks: self.subtasks.load(Relaxed),
            compactions: self.compactions.load(Relaxed),
            wall_time: Duration::from_nanos(self.wall_nanos.load(Relaxed)),
        }
    }
}

/// Immutable view of a [`CompactionProfile`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfileSnapshot {
    /// Accumulated time per step, indexed by [`Step`] discriminant.
    pub step_time: [Duration; 7],
    /// Compressed bytes read (step S1 volume).
    pub input_bytes: u64,
    /// Compressed bytes written (step S7 volume).
    pub output_bytes: u64,
    /// Uncompressed bytes that flowed through the compute stage.
    pub raw_bytes: u64,
    /// Data blocks processed.
    pub blocks: u64,
    /// Entries merged in.
    pub entries_in: u64,
    /// Entries surviving to the output.
    pub entries_out: u64,
    /// Sub-tasks executed.
    pub subtasks: u64,
    /// Compactions completed.
    pub compactions: u64,
    /// Total wall time across compactions.
    pub wall_time: Duration,
}

impl ProfileSnapshot {
    /// Time for one step.
    pub fn time(&self, s: Step) -> Duration {
        self.step_time[s as usize]
    }

    /// Σ all seven steps.
    pub fn total_step_time(&self) -> Duration {
        self.step_time.iter().sum()
    }

    /// Fraction of total step time spent in `s` (0 when nothing ran).
    pub fn fraction(&self, s: Step) -> f64 {
        let total = self.total_step_time().as_secs_f64();
        if total > 0.0 {
            self.time(s).as_secs_f64() / total
        } else {
            0.0
        }
    }

    /// Aggregate read / compute / write split (Fig. 5's three parts).
    pub fn three_part_split(&self) -> (f64, f64, f64) {
        let read = self.fraction(Step::Read);
        let write = self.fraction(Step::Write);
        (read, 1.0 - read - write, write)
    }

    /// Compaction bandwidth in bytes/second: total data moved
    /// (input + output) over wall time — the paper's headline metric.
    pub fn bandwidth(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs > 0.0 {
            (self.input_bytes + self.output_bytes) as f64 / secs
        } else {
            0.0
        }
    }

    /// Per-sub-task mean step times in seconds, for the analytical model.
    pub fn mean_step_seconds(&self) -> [f64; 7] {
        let n = self.subtasks.max(1) as f64;
        std::array::from_fn(|i| self.step_time[i].as_secs_f64() / n)
    }

    /// Counter-wise difference (for per-phase measurements).
    pub fn delta(&self, earlier: &ProfileSnapshot) -> ProfileSnapshot {
        ProfileSnapshot {
            step_time: std::array::from_fn(|i| {
                self.step_time[i].saturating_sub(earlier.step_time[i])
            }),
            input_bytes: self.input_bytes - earlier.input_bytes,
            output_bytes: self.output_bytes - earlier.output_bytes,
            raw_bytes: self.raw_bytes - earlier.raw_bytes,
            blocks: self.blocks - earlier.blocks,
            entries_in: self.entries_in - earlier.entries_in,
            entries_out: self.entries_out - earlier.entries_out,
            subtasks: self.subtasks - earlier.subtasks,
            compactions: self.compactions - earlier.compactions,
            wall_time: self.wall_time.saturating_sub(earlier.wall_time),
        }
    }
}

/// Times a closure, recording the elapsed time under step `s`.
#[inline]
pub fn timed<T>(profile: &CompactionProfile, s: Step, f: impl FnOnce() -> T) -> T {
    let t0 = std::time::Instant::now();
    let out = f();
    profile.record(s, t0.elapsed());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let p = CompactionProfile::new();
        for (i, s) in Step::ALL.iter().enumerate() {
            p.record(*s, Duration::from_millis(10 * (i as u64 + 1)));
        }
        let snap = p.snapshot();
        let total: f64 = Step::ALL.iter().map(|s| snap.fraction(*s)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let (r, c, w) = snap.three_part_split();
        assert!((r + c + w - 1.0).abs() < 1e-9);
        assert!(c > r && c > w, "S2-S6 dominate this synthetic profile");
    }

    #[test]
    fn bandwidth_accounts_input_plus_output() {
        let p = CompactionProfile::new();
        p.add_input_bytes(100 << 20);
        p.add_output_bytes(100 << 20);
        p.add_compaction(Duration::from_secs(2));
        let bw = p.snapshot().bandwidth();
        assert!((bw - 100.0 * 1024.0 * 1024.0).abs() < 1.0);
    }

    #[test]
    fn timed_records_something() {
        let p = CompactionProfile::new();
        let v = timed(&p, Step::Sort, || {
            std::hint::black_box((0..10_000).sum::<u64>())
        });
        assert_eq!(v, 49_995_000);
        assert!(p.snapshot().time(Step::Sort) > Duration::ZERO);
    }

    #[test]
    fn delta_subtracts() {
        let p = CompactionProfile::new();
        p.add_input_bytes(10);
        let a = p.snapshot();
        p.add_input_bytes(7);
        p.record(Step::Read, Duration::from_micros(3));
        let d = p.snapshot().delta(&a);
        assert_eq!(d.input_bytes, 7);
        assert_eq!(d.time(Step::Read), Duration::from_micros(3));
    }

    #[test]
    fn step_labels_match_paper() {
        let labels: Vec<&str> = Step::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["read", "crc", "decomp", "sort", "comp", "re-crc", "write"]
        );
        assert!(Step::Read.is_io() && Step::Write.is_io());
        assert!(!Step::Sort.is_io());
    }
}
