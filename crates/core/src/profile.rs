//! Per-step time accounting.
//!
//! Every executor records how long each of the seven compaction steps took
//! and how many bytes/blocks/entries flowed through. The Fig. 5/8/9
//! harnesses read these to print execution-time breakdowns, and the
//! measured per-byte costs calibrate both the analytical model (Eq. 1–7)
//! and the discrete-event simulator.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// The seven compaction steps of paper Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// S1 — read input blocks from the device.
    Read = 0,
    /// S2 — verify block checksums.
    Checksum = 1,
    /// S3 — decompress block contents.
    Decompress = 2,
    /// S4 — merge-sort entries and drop shadowed versions.
    Sort = 3,
    /// S5 — compress output blocks.
    Compress = 4,
    /// S6 — checksum output blocks.
    ReChecksum = 5,
    /// S7 — write output blocks to the device.
    Write = 6,
}

impl Step {
    /// All steps in execution order.
    pub const ALL: [Step; 7] = [
        Step::Read,
        Step::Checksum,
        Step::Decompress,
        Step::Sort,
        Step::Compress,
        Step::ReChecksum,
        Step::Write,
    ];

    /// Short name used in reports ("read", "crc", "decomp", …), matching
    /// the paper's figure labels.
    pub fn label(&self) -> &'static str {
        match self {
            Step::Read => "read",
            Step::Checksum => "crc",
            Step::Decompress => "decomp",
            Step::Sort => "sort",
            Step::Compress => "comp",
            Step::ReChecksum => "re-crc",
            Step::Write => "write",
        }
    }

    /// True for the steps that use the I/O resource (S1, S7).
    pub fn is_io(&self) -> bool {
        matches!(self, Step::Read | Step::Write)
    }
}

/// Per-resource busy-time fractions for one compaction — the quantity of
/// the paper's Fig. 5 (and the x-axis intuition behind Figs. 8–12): how
/// much of the compaction's wall time each resource spent working.
///
/// `read` and `write` share the disk; `compute` covers S2–S6 on the CPU.
/// Under SCP the three fractions sum to ≤ 1.0 (one resource busy at a
/// time); under PCP each fraction individually approaches 1.0 on the
/// bottleneck resource while the others overlap it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Occupancy {
    /// Fraction of wall time the read stage (S1) was busy.
    pub read: f64,
    /// Fraction of wall time the compute steps (S2–S6) were busy.
    pub compute: f64,
    /// Fraction of wall time the write stage (S7) was busy.
    pub write: f64,
    /// The wall time the fractions are relative to.
    pub wall: Duration,
}

impl Occupancy {
    /// The largest of the three fractions — the bottleneck resource's
    /// occupancy, which PCP drives toward 1.0.
    pub fn bottleneck(&self) -> f64 {
        self.read.max(self.compute).max(self.write)
    }
}

/// Thread-safe accumulator shared by all pipeline stages of one (or many)
/// compactions.
#[derive(Debug, Default)]
pub struct CompactionProfile {
    step_nanos: [AtomicU64; 7],
    input_bytes: AtomicU64,
    output_bytes: AtomicU64,
    raw_bytes: AtomicU64,
    blocks: AtomicU64,
    entries_in: AtomicU64,
    entries_out: AtomicU64,
    subtasks: AtomicU64,
    compactions: AtomicU64,
    wall_nanos: AtomicU64,
    /// read/compute/write fractions of the most recent compaction, as f64
    /// bits (see [`CompactionProfile::set_last_occupancy`]).
    last_occ: [AtomicU64; 3],
    last_occ_wall_nanos: AtomicU64,
}

impl CompactionProfile {
    /// A zeroed profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to step `s`.
    pub fn record(&self, s: Step, d: Duration) {
        self.step_nanos[s as usize].fetch_add(d.as_nanos() as u64, Relaxed);
    }

    /// Adds compressed bytes read by S1.
    pub fn add_input_bytes(&self, n: u64) {
        self.input_bytes.fetch_add(n, Relaxed);
    }

    /// Adds compressed bytes written by S7.
    pub fn add_output_bytes(&self, n: u64) {
        self.output_bytes.fetch_add(n, Relaxed);
    }

    /// Adds uncompressed bytes through the compute stage.
    pub fn add_raw_bytes(&self, n: u64) {
        self.raw_bytes.fetch_add(n, Relaxed);
    }

    /// Adds data blocks processed.
    pub fn add_blocks(&self, n: u64) {
        self.blocks.fetch_add(n, Relaxed);
    }

    /// Adds entries merged in.
    pub fn add_entries_in(&self, n: u64) {
        self.entries_in.fetch_add(n, Relaxed);
    }

    /// Adds entries surviving to the output.
    pub fn add_entries_out(&self, n: u64) {
        self.entries_out.fetch_add(n, Relaxed);
    }

    /// Adds sub-tasks executed.
    pub fn add_subtasks(&self, n: u64) {
        self.subtasks.fetch_add(n, Relaxed);
    }

    /// Records one whole-compaction wall time.
    pub fn add_compaction(&self, wall: Duration) {
        self.compactions.fetch_add(1, Relaxed);
        self.wall_nanos.fetch_add(wall.as_nanos() as u64, Relaxed);
    }

    /// Publishes the occupancy of the most recent compaction (executors
    /// call this with the per-compaction snapshot delta's
    /// [`ProfileSnapshot::occupancy`]). Readable via
    /// [`CompactionProfile::last_occupancy`] and exported as the
    /// `pcp_compaction_last_occupancy` gauge.
    pub fn set_last_occupancy(&self, occ: &Occupancy) {
        self.last_occ[0].store(occ.read.to_bits(), Relaxed);
        self.last_occ[1].store(occ.compute.to_bits(), Relaxed);
        self.last_occ[2].store(occ.write.to_bits(), Relaxed);
        self.last_occ_wall_nanos
            .store(occ.wall.as_nanos() as u64, Relaxed);
    }

    /// The occupancy published by the most recent completed compaction
    /// (all-zero before the first one).
    pub fn last_occupancy(&self) -> Occupancy {
        Occupancy {
            read: f64::from_bits(self.last_occ[0].load(Relaxed)),
            compute: f64::from_bits(self.last_occ[1].load(Relaxed)),
            write: f64::from_bits(self.last_occ[2].load(Relaxed)),
            wall: Duration::from_nanos(self.last_occ_wall_nanos.load(Relaxed)),
        }
    }

    /// Registers every accumulator of this profile in `registry` under the
    /// `pcp_compaction_*` namespace, labelled `exec="<exec>"` (the
    /// executor name, so SCP and PCP profiles can coexist in one
    /// registry). The registration is by closure collector: the profile
    /// keeps its own atomics and the registry reads them at scrape time.
    pub fn register_metrics(self: &Arc<Self>, registry: &pcp_obs::Registry, exec: &str) {
        let base = vec![("exec".to_string(), exec.to_string())];
        for s in Step::ALL {
            let p = Arc::clone(self);
            let mut labels = base.clone();
            labels.push(("step".to_string(), s.label().to_string()));
            registry.register_fn_counter(
                "pcp_compaction_step_busy_nanoseconds_total",
                "accumulated busy time per compaction step S1-S7 (paper Fig. 2)",
                labels,
                move || p.step_nanos[s as usize].load(Relaxed),
            );
        }
        type Getter = fn(&CompactionProfile) -> u64;
        let counters: [(&str, &str, Getter); 8] = [
            ("pcp_compaction_input_bytes_total", "compressed bytes read by S1", |p| p.input_bytes.load(Relaxed)),
            ("pcp_compaction_output_bytes_total", "compressed bytes written by S7", |p| p.output_bytes.load(Relaxed)),
            ("pcp_compaction_raw_bytes_total", "uncompressed bytes through the compute stage", |p| p.raw_bytes.load(Relaxed)),
            ("pcp_compaction_blocks_total", "data blocks processed", |p| p.blocks.load(Relaxed)),
            ("pcp_compaction_entries_in_total", "entries merged in", |p| p.entries_in.load(Relaxed)),
            ("pcp_compaction_entries_out_total", "entries surviving to the output", |p| p.entries_out.load(Relaxed)),
            ("pcp_compaction_subtasks_total", "sub-tasks executed", |p| p.subtasks.load(Relaxed)),
            ("pcp_compactions_total", "compactions completed", |p| p.compactions.load(Relaxed)),
        ];
        for (name, help, get) in counters {
            let p = Arc::clone(self);
            registry.register_fn_counter(name, help, base.clone(), move || get(&p));
        }
        {
            let p = Arc::clone(self);
            registry.register_fn_counter(
                "pcp_compaction_wall_nanoseconds_total",
                "wall time summed over completed compactions",
                base.clone(),
                move || p.wall_nanos.load(Relaxed),
            );
        }
        for (stage, idx) in [("read", 0usize), ("compute", 1), ("write", 2)] {
            let p = Arc::clone(self);
            let mut labels = base.clone();
            labels.push(("stage".to_string(), stage.to_string()));
            registry.register_fn_gauge(
                "pcp_compaction_last_occupancy",
                "per-resource busy-time fraction of the most recent compaction (paper Fig. 5)",
                labels,
                move || f64::from_bits(p.last_occ[idx].load(Relaxed)),
            );
        }
    }

    /// Plain-data snapshot.
    pub fn snapshot(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            step_time: std::array::from_fn(|i| {
                Duration::from_nanos(self.step_nanos[i].load(Relaxed))
            }),
            input_bytes: self.input_bytes.load(Relaxed),
            output_bytes: self.output_bytes.load(Relaxed),
            raw_bytes: self.raw_bytes.load(Relaxed),
            blocks: self.blocks.load(Relaxed),
            entries_in: self.entries_in.load(Relaxed),
            entries_out: self.entries_out.load(Relaxed),
            subtasks: self.subtasks.load(Relaxed),
            compactions: self.compactions.load(Relaxed),
            wall_time: Duration::from_nanos(self.wall_nanos.load(Relaxed)),
        }
    }
}

/// Immutable view of a [`CompactionProfile`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfileSnapshot {
    /// Accumulated time per step, indexed by [`Step`] discriminant.
    pub step_time: [Duration; 7],
    /// Compressed bytes read (step S1 volume).
    pub input_bytes: u64,
    /// Compressed bytes written (step S7 volume).
    pub output_bytes: u64,
    /// Uncompressed bytes that flowed through the compute stage.
    pub raw_bytes: u64,
    /// Data blocks processed.
    pub blocks: u64,
    /// Entries merged in.
    pub entries_in: u64,
    /// Entries surviving to the output.
    pub entries_out: u64,
    /// Sub-tasks executed.
    pub subtasks: u64,
    /// Compactions completed.
    pub compactions: u64,
    /// Total wall time across compactions.
    pub wall_time: Duration,
}

impl ProfileSnapshot {
    /// Time for one step.
    pub fn time(&self, s: Step) -> Duration {
        self.step_time[s as usize]
    }

    /// Σ all seven steps.
    pub fn total_step_time(&self) -> Duration {
        self.step_time.iter().sum()
    }

    /// Fraction of total step time spent in `s` (0 when nothing ran).
    pub fn fraction(&self, s: Step) -> f64 {
        let total = self.total_step_time().as_secs_f64();
        if total > 0.0 {
            self.time(s).as_secs_f64() / total
        } else {
            0.0
        }
    }

    /// Per-resource busy-time fractions relative to wall time — the
    /// paper's Fig. 5 quantity. Meaningful on a per-compaction snapshot
    /// (or a [`ProfileSnapshot::delta`] spanning one compaction): `read`
    /// is S1 busy / wall, `compute` is S2–S6 busy / wall, `write` is S7
    /// busy / wall. All-zero when no wall time was recorded.
    pub fn occupancy(&self) -> Occupancy {
        let wall = self.wall_time.as_secs_f64();
        if wall <= 0.0 {
            return Occupancy::default();
        }
        let compute: Duration = [
            Step::Checksum,
            Step::Decompress,
            Step::Sort,
            Step::Compress,
            Step::ReChecksum,
        ]
        .iter()
        .map(|s| self.time(*s))
        .sum();
        Occupancy {
            read: self.time(Step::Read).as_secs_f64() / wall,
            compute: compute.as_secs_f64() / wall,
            write: self.time(Step::Write).as_secs_f64() / wall,
            wall: self.wall_time,
        }
    }

    /// Aggregate read / compute / write split (Fig. 5's three parts).
    pub fn three_part_split(&self) -> (f64, f64, f64) {
        let read = self.fraction(Step::Read);
        let write = self.fraction(Step::Write);
        (read, 1.0 - read - write, write)
    }

    /// Compaction bandwidth in bytes/second: total data moved
    /// (input + output) over wall time — the paper's headline metric.
    pub fn bandwidth(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs > 0.0 {
            (self.input_bytes + self.output_bytes) as f64 / secs
        } else {
            0.0
        }
    }

    /// Per-sub-task mean step times in seconds, for the analytical model.
    pub fn mean_step_seconds(&self) -> [f64; 7] {
        let n = self.subtasks.max(1) as f64;
        std::array::from_fn(|i| self.step_time[i].as_secs_f64() / n)
    }

    /// Counter-wise difference (for per-phase measurements).
    pub fn delta(&self, earlier: &ProfileSnapshot) -> ProfileSnapshot {
        ProfileSnapshot {
            step_time: std::array::from_fn(|i| {
                self.step_time[i].saturating_sub(earlier.step_time[i])
            }),
            input_bytes: self.input_bytes - earlier.input_bytes,
            output_bytes: self.output_bytes - earlier.output_bytes,
            raw_bytes: self.raw_bytes - earlier.raw_bytes,
            blocks: self.blocks - earlier.blocks,
            entries_in: self.entries_in - earlier.entries_in,
            entries_out: self.entries_out - earlier.entries_out,
            subtasks: self.subtasks - earlier.subtasks,
            compactions: self.compactions - earlier.compactions,
            wall_time: self.wall_time.saturating_sub(earlier.wall_time),
        }
    }
}

/// Times a closure, recording the elapsed time under step `s`.
#[inline]
pub fn timed<T>(profile: &CompactionProfile, s: Step, f: impl FnOnce() -> T) -> T {
    let t0 = std::time::Instant::now();
    let out = f();
    profile.record(s, t0.elapsed());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let p = CompactionProfile::new();
        for (i, s) in Step::ALL.iter().enumerate() {
            p.record(*s, Duration::from_millis(10 * (i as u64 + 1)));
        }
        let snap = p.snapshot();
        let total: f64 = Step::ALL.iter().map(|s| snap.fraction(*s)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let (r, c, w) = snap.three_part_split();
        assert!((r + c + w - 1.0).abs() < 1e-9);
        assert!(c > r && c > w, "S2-S6 dominate this synthetic profile");
    }

    #[test]
    fn bandwidth_accounts_input_plus_output() {
        let p = CompactionProfile::new();
        p.add_input_bytes(100 << 20);
        p.add_output_bytes(100 << 20);
        p.add_compaction(Duration::from_secs(2));
        let bw = p.snapshot().bandwidth();
        assert!((bw - 100.0 * 1024.0 * 1024.0).abs() < 1.0);
    }

    #[test]
    fn timed_records_something() {
        let p = CompactionProfile::new();
        let v = timed(&p, Step::Sort, || {
            std::hint::black_box((0..10_000).sum::<u64>())
        });
        assert_eq!(v, 49_995_000);
        assert!(p.snapshot().time(Step::Sort) > Duration::ZERO);
    }

    #[test]
    fn delta_subtracts() {
        let p = CompactionProfile::new();
        p.add_input_bytes(10);
        let a = p.snapshot();
        p.add_input_bytes(7);
        p.record(Step::Read, Duration::from_micros(3));
        let d = p.snapshot().delta(&a);
        assert_eq!(d.input_bytes, 7);
        assert_eq!(d.time(Step::Read), Duration::from_micros(3));
    }

    #[test]
    fn occupancy_splits_resources_against_wall_time() {
        let p = CompactionProfile::new();
        p.record(Step::Read, Duration::from_millis(200));
        p.record(Step::Sort, Duration::from_millis(500));
        p.record(Step::Checksum, Duration::from_millis(100));
        p.record(Step::Write, Duration::from_millis(300));
        p.add_compaction(Duration::from_secs(1));
        let occ = p.snapshot().occupancy();
        assert!((occ.read - 0.2).abs() < 1e-9);
        assert!((occ.compute - 0.6).abs() < 1e-9);
        assert!((occ.write - 0.3).abs() < 1e-9);
        assert!((occ.bottleneck() - 0.6).abs() < 1e-9);
        assert_eq!(occ.wall, Duration::from_secs(1));
        // Empty profile → all-zero occupancy, no division by zero.
        assert_eq!(CompactionProfile::new().snapshot().occupancy(), Occupancy::default());
    }

    #[test]
    fn last_occupancy_round_trips() {
        let p = CompactionProfile::new();
        assert_eq!(p.last_occupancy(), Occupancy::default());
        let occ = Occupancy {
            read: 0.25,
            compute: 0.5,
            write: 0.125,
            wall: Duration::from_millis(42),
        };
        p.set_last_occupancy(&occ);
        assert_eq!(p.last_occupancy(), occ);
    }

    #[test]
    fn register_metrics_exports_every_accumulator() {
        let p = Arc::new(CompactionProfile::new());
        p.record(Step::Read, Duration::from_millis(3));
        p.add_input_bytes(1234);
        p.add_compaction(Duration::from_millis(10));
        p.set_last_occupancy(&p.snapshot().occupancy());
        let registry = pcp_obs::Registry::new();
        p.register_metrics(&registry, "scp");
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter(
                "pcp_compaction_step_busy_nanoseconds_total",
                &[("exec", "scp"), ("step", "read")]
            ),
            3_000_000
        );
        assert_eq!(
            snap.counter("pcp_compaction_input_bytes_total", &[("exec", "scp")]),
            1234
        );
        assert_eq!(snap.counter("pcp_compactions_total", &[("exec", "scp")]), 1);
        let read_occ = snap.gauge(
            "pcp_compaction_last_occupancy",
            &[("exec", "scp"), ("stage", "read")],
        );
        assert!((read_occ - 0.3).abs() < 0.05, "read occupancy {read_occ}");
        // Two executors can share a registry thanks to the exec label.
        Arc::new(CompactionProfile::new()).register_metrics(&registry, "pcp");
        pcp_obs::validate_exposition(&registry.render_prometheus()).unwrap();
    }

    #[test]
    fn step_labels_match_paper() {
        let labels: Vec<&str> = Step::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["read", "crc", "decomp", "sort", "comp", "re-crc", "write"]
        );
        assert!(Step::Read.is_io() && Step::Write.is_io());
        assert!(!Step::Sort.is_io());
    }
}
