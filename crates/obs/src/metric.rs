//! The two scalar instruments: monotone counters and float gauges.
//!
//! Both are single relaxed atomics — recording costs one `fetch_add` (or
//! one store), and reading costs one load. The relaxed ordering is
//! deliberate: these are statistics, read either after the workload
//! quiesces or approximately for progress reporting, so no inter-counter
//! ordering is required (the same argument `DeviceStats` makes).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// A monotonically increasing `u64` counter.
///
/// ```
/// let c = pcp_obs::Counter::new();
/// c.inc();
/// c.add(41);
/// assert_eq!(c.get(), 42);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic).
///
/// Gauges go up and down — active connections, occupancy fractions,
/// queue depths. `set` is a plain store; `add` is a CAS loop, which is
/// fine because gauges are written rarely (state transitions, not per-op).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge starting at `0.0`.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.bits.compare_exchange_weak(cur, next, Relaxed, Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn gauge_set_add() {
        let g = Gauge::new();
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    /// Hammering a counter from 8 threads loses no increments.
    #[test]
    fn counter_concurrent_increments_lose_nothing() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 100_000;
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn gauge_concurrent_adds_balance_out() {
        let g = Arc::new(Gauge::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let g = Arc::clone(&g);
                let delta = if i % 2 == 0 { 1.0 } else { -1.0 };
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        g.add(delta);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.get(), 0.0);
    }
}
