//! The metrics registry: named, labelled instruments in one place.
//!
//! Components *register* once (taking the `parking_lot` mutex) and get
//! back an `Arc` instrument they record into lock-free forever after.
//! Components that already own their counters as plain atomics export
//! them through closure collectors instead
//! ([`Registry::register_fn_counter`] / [`Registry::register_fn_gauge`]),
//! read only at scrape time — adoption without restructuring.
//!
//! Scraping ([`Registry::snapshot`]) takes the mutex, reads every
//! instrument once, and returns plain data; rendering to Prometheus text
//! or JSON happens on the snapshot, outside the lock.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::metric::{Counter, Gauge};
use parking_lot::Mutex;
use std::sync::Arc;

/// Label set: `(name, value)` pairs attached to one instrument.
pub type Labels = Vec<(String, String)>;

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    FnCounter(Box<dyn Fn() -> u64 + Send + Sync>),
    FnGauge(Box<dyn Fn() -> f64 + Send + Sync>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) | Instrument::FnCounter(_) => "counter",
            Instrument::Gauge(_) | Instrument::FnGauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    help: String,
    labels: Labels,
    instrument: Instrument,
}

/// A collection of named instruments; the unit of exposition.
///
/// ```
/// let registry = pcp_obs::Registry::new();
/// let reqs = registry.counter("demo_requests_total", "requests served");
/// reqs.inc();
/// let text = registry.render_prometheus();
/// assert!(text.contains("demo_requests_total 1"));
/// ```
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

/// `[a-zA-Z_][a-zA-Z0-9_]*` — the Prometheus identifier charset (we skip
/// the colon, which is reserved for recording rules).
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn insert(&self, name: &str, help: &str, labels: Labels, instrument: Instrument) {
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (k, _) in &labels {
            assert!(valid_name(k), "invalid label name {k:?} on {name}");
        }
        let mut entries = self.entries.lock();
        for e in entries.iter() {
            if e.name == name && e.labels == labels {
                panic!("metric {name:?} with labels {labels:?} registered twice");
            }
            if e.name == name && e.instrument.kind() != instrument.kind() {
                panic!(
                    "metric {name:?} registered as both {} and {}",
                    e.instrument.kind(),
                    instrument.kind()
                );
            }
        }
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            instrument,
        });
    }

    /// Registers and returns a new counter with no labels.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, Vec::new())
    }

    /// Registers and returns a new counter with `labels`.
    pub fn counter_with(&self, name: &str, help: &str, labels: Labels) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.insert(name, help, labels, Instrument::Counter(Arc::clone(&c)));
        c
    }

    /// Registers and returns a new gauge with no labels.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, Vec::new())
    }

    /// Registers and returns a new gauge with `labels`.
    pub fn gauge_with(&self, name: &str, help: &str, labels: Labels) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.insert(name, help, labels, Instrument::Gauge(Arc::clone(&g)));
        g
    }

    /// Registers and returns a new histogram with no labels.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, Vec::new())
    }

    /// Registers and returns a new histogram with `labels`.
    pub fn histogram_with(&self, name: &str, help: &str, labels: Labels) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.register_histogram(name, help, labels, Arc::clone(&h));
        h
    }

    /// Adopts an existing histogram (e.g. one a device or server already
    /// records into) under `name`.
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: Labels,
        h: Arc<Histogram>,
    ) {
        self.insert(name, help, labels, Instrument::Histogram(h));
    }

    /// Registers a counter whose value is computed by `f` at scrape time —
    /// how components export counters they already keep as plain atomics.
    /// `f` must be monotone for the result to behave as a counter.
    pub fn register_fn_counter(
        &self,
        name: &str,
        help: &str,
        labels: Labels,
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.insert(name, help, labels, Instrument::FnCounter(Box::new(f)));
    }

    /// Registers a gauge whose value is computed by `f` at scrape time.
    pub fn register_fn_gauge(
        &self,
        name: &str,
        help: &str,
        labels: Labels,
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.insert(name, help, labels, Instrument::FnGauge(Box::new(f)));
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads every instrument once and returns plain data, sorted by
    /// metric name (stable, so same-name label variants keep registration
    /// order).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock();
        let mut samples: Vec<Sample> = entries
            .iter()
            .map(|e| Sample {
                name: e.name.clone(),
                help: e.help.clone(),
                labels: e.labels.clone(),
                value: match &e.instrument {
                    Instrument::Counter(c) => SampleValue::Counter(c.get()),
                    Instrument::FnCounter(f) => SampleValue::Counter(f()),
                    Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                    Instrument::FnGauge(f) => SampleValue::Gauge(f()),
                    Instrument::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        samples.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { samples }
    }

    /// Shorthand for `snapshot().render_prometheus()`.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }
}

/// One instrument's value at scrape time.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Monotone count.
    Counter(u64),
    /// Instantaneous value.
    Gauge(f64),
    /// Distribution summary.
    Histogram(HistogramSnapshot),
}

/// One `(name, labels) → value` reading.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (Prometheus identifier charset).
    pub name: String,
    /// Help text, emitted as the `# HELP` line.
    pub help: String,
    /// Label pairs identifying this series.
    pub labels: Labels,
    /// The reading.
    pub value: SampleValue,
}

/// A whole registry read at one instant — the serde type of the
/// observability layer: [`MetricsSnapshot::to_json`] for machine-readable
/// artifacts (`BENCH_obs.json`), [`MetricsSnapshot::render_prometheus`]
/// for the text exposition served over the wire.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Every sample, sorted by metric name.
    pub samples: Vec<Sample>,
}

impl MetricsSnapshot {
    /// The sample for `name` with no labels, if present.
    pub fn get(&self, name: &str) -> Option<&Sample> {
        self.get_with(name, &[])
    }

    /// The sample for `name` whose labels match `labels` exactly.
    pub fn get_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Sample> {
        self.samples.iter().find(|s| {
            s.name == name
                && s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels.iter())
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        })
    }

    /// Counter value for `name`+`labels`, or 0 when absent.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get_with(name, labels).map(|s| &s.value) {
            Some(SampleValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value for `name`+`labels`, or 0.0 when absent.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        match self.get_with(name, labels).map(|s| &s.value) {
            Some(SampleValue::Gauge(v)) => *v,
            _ => 0.0,
        }
    }

    /// Renders the Prometheus text exposition format (`# HELP` / `# TYPE`
    /// headers once per metric name, histogram `_bucket`/`_sum`/`_count`
    /// expansion). See [`crate::expo`].
    pub fn render_prometheus(&self) -> String {
        crate::expo::render_prometheus(self)
    }

    /// Serializes to a self-contained JSON document (no external
    /// dependencies; escaping handled here). Histograms carry
    /// count/sum/max/mean plus p50/p90/p99/p999.
    pub fn to_json(&self) -> String {
        crate::expo::render_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_snapshot_all_kinds() {
        let r = Registry::new();
        let c = r.counter("test_ops_total", "ops");
        let g = r.gauge("test_depth", "queue depth");
        let h = r.histogram("test_latency_nanoseconds", "latency");
        r.register_fn_counter("test_fn_total", "external", Vec::new(), || 7);
        r.register_fn_gauge("test_fn_gauge", "external", Vec::new(), || 0.25);
        c.add(3);
        g.set(2.0);
        h.record(500);
        let snap = r.snapshot();
        assert_eq!(snap.samples.len(), 5);
        assert_eq!(snap.counter("test_ops_total", &[]), 3);
        assert_eq!(snap.counter("test_fn_total", &[]), 7);
        assert_eq!(snap.gauge("test_depth", &[]), 2.0);
        assert_eq!(snap.gauge("test_fn_gauge", &[]), 0.25);
        match &snap.get("test_latency_nanoseconds").unwrap().value {
            SampleValue::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn labelled_series_coexist_and_sort_stably() {
        let r = Registry::new();
        for shard in 0..3 {
            r.counter_with(
                "test_puts_total",
                "puts",
                vec![("shard".into(), shard.to_string())],
            )
            .add(shard);
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("test_puts_total", &[("shard", "2")]), 2);
        let shards: Vec<&str> = snap
            .samples
            .iter()
            .map(|s| s.labels[0].1.as_str())
            .collect();
        assert_eq!(shards, vec!["0", "1", "2"], "registration order kept");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_series_panics() {
        let r = Registry::new();
        r.counter("test_dup_total", "");
        r.counter("test_dup_total", "");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        Registry::new().counter("0bad-name", "");
    }

    #[test]
    fn snapshot_lookup_misses_are_zero() {
        let snap = Registry::new().snapshot();
        assert_eq!(snap.counter("absent", &[]), 0);
        assert_eq!(snap.gauge("absent", &[]), 0.0);
        assert!(snap.get("absent").is_none());
    }
}
