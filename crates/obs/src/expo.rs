//! Exposition: rendering a [`MetricsSnapshot`] to the Prometheus text
//! format and to JSON, plus a line-by-line validator for the text format.
//!
//! The renderer follows the Prometheus text exposition conventions:
//! `# HELP` / `# TYPE` headers once per metric name, samples as
//! `name{label="value",…} value`, and histograms expanded into the
//! cumulative `_bucket{le="…"}` series (with the mandatory `+Inf`
//! bucket) plus `_sum` and `_count`. The validator
//! ([`validate_exposition`]) is what the wire-protocol tests use to
//! assert that what `KvServer` serves actually parses.

use crate::registry::{MetricsSnapshot, Sample, SampleValue};

/// Escapes a string for a JSON string literal (no surrounding quotes).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a Prometheus label value (`\\`, `\"`, `\n`).
fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes Prometheus HELP text (`\\` and `\n` only, per the format).
fn help_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 the way Prometheus expects (`+Inf`, `-Inf`, `NaN`
/// spellings for the specials).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// `{a="1",b="2"}` (empty string when no labels). `extra` appends one
/// more pair — used for the histogram `le` label.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", label_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", label_escape(v)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Renders the snapshot as Prometheus text exposition format.
pub(crate) fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for s in &snap.samples {
        // Samples are sorted by name; emit headers once per name.
        if last_name != Some(s.name.as_str()) {
            let kind = match &s.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) => "histogram",
            };
            if !s.help.is_empty() {
                out.push_str(&format!("# HELP {} {}\n", s.name, help_escape(&s.help)));
            }
            out.push_str(&format!("# TYPE {} {kind}\n", s.name));
            last_name = Some(s.name.as_str());
        }
        match &s.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!("{}{} {v}\n", s.name, label_block(&s.labels, None)));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    s.name,
                    label_block(&s.labels, None),
                    fmt_f64(*v)
                ));
            }
            SampleValue::Histogram(h) => {
                for (bound, cum) in h.cumulative() {
                    out.push_str(&format!(
                        "{}_bucket{} {cum}\n",
                        s.name,
                        label_block(&s.labels, Some(("le", &bound.to_string())))
                    ));
                }
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    s.name,
                    label_block(&s.labels, Some(("le", "+Inf"))),
                    h.count
                ));
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    s.name,
                    label_block(&s.labels, None),
                    h.sum
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    s.name,
                    label_block(&s.labels, None),
                    h.count
                ));
            }
        }
    }
    out
}

fn json_sample(s: &Sample) -> String {
    let mut obj = format!("{{\"name\":\"{}\"", json_escape(&s.name));
    if !s.labels.is_empty() {
        let pairs: Vec<String> = s
            .labels
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
            .collect();
        obj.push_str(&format!(",\"labels\":{{{}}}", pairs.join(",")));
    }
    match &s.value {
        SampleValue::Counter(v) => {
            obj.push_str(&format!(",\"kind\":\"counter\",\"value\":{v}"));
        }
        SampleValue::Gauge(v) => {
            let v = if v.is_finite() { *v } else { 0.0 };
            obj.push_str(&format!(",\"kind\":\"gauge\",\"value\":{v}"));
        }
        SampleValue::Histogram(h) => {
            obj.push_str(&format!(
                ",\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}",
                h.count,
                h.sum,
                h.max,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
                h.quantile(0.999)
            ));
        }
    }
    obj.push('}');
    obj
}

/// Renders the snapshot as a self-contained JSON document.
pub(crate) fn render_json(snap: &MetricsSnapshot) -> String {
    let samples: Vec<String> = snap.samples.iter().map(json_sample).collect();
    format!("{{\"samples\":[{}]}}", samples.join(","))
}

/// A parse failure from [`validate_exposition`]: 1-based line number plus
/// what went wrong there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpoError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What failed to parse.
    pub msg: String,
}

impl std::fmt::Display for ExpoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exposition line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ExpoError {}

fn is_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses `{k="v",…}` starting at `rest` (which begins with `{`); returns
/// the remainder after the closing brace.
fn parse_labels(rest: &str) -> Result<&str, String> {
    let mut chars = rest.char_indices();
    chars.next(); // consume '{'
    let mut expect_name = true;
    loop {
        // Label name (or closing brace).
        match chars.next() {
            Some((i, '}')) if expect_name => return Ok(&rest[i + 1..]),
            Some((_, c)) if c.is_ascii_alphabetic() || c == '_' => {}
            Some((_, c)) => return Err(format!("unexpected {c:?} in label block")),
            None => return Err("unterminated label block".to_string()),
        }
        // Scan the rest of the name, up to '='.
        loop {
            match chars.next() {
                Some((_, c)) if c.is_ascii_alphanumeric() || c == '_' => {}
                Some((_, '=')) => break,
                Some((_, c)) => return Err(format!("unexpected {c:?} in label name")),
                None => return Err("unterminated label block".to_string()),
            }
        }
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err("label value must be quoted".to_string()),
        }
        // Quoted value with escapes.
        loop {
            match chars.next() {
                Some((_, '\\')) => {
                    match chars.next() {
                        Some((_, '\\' | '"' | 'n')) => {}
                        _ => return Err("bad escape in label value".to_string()),
                    }
                }
                Some((_, '"')) => break,
                Some(_) => {}
                None => return Err("unterminated label value".to_string()),
            }
        }
        match chars.next() {
            Some((_, ',')) => {
                expect_name = false;
                continue;
            }
            Some((i, '}')) => return Ok(&rest[i + 1..]),
            _ => return Err("expected ',' or '}' after label value".to_string()),
        }
    }
}

fn is_value(s: &str) -> bool {
    matches!(s, "+Inf" | "-Inf" | "NaN") || s.parse::<f64>().is_ok()
}

/// Validates `text` as Prometheus text exposition format, line by line.
///
/// Checks comment/header syntax (`# TYPE` kinds, `# HELP` placement),
/// metric-name charset, label-block syntax including escapes, and that
/// every sample value parses as a float. Returns the number of sample
/// (non-comment, non-blank) lines on success.
pub fn validate_exposition(text: &str) -> Result<usize, ExpoError> {
    let err = |line: usize, msg: String| ExpoError { line, msg };
    let mut samples = 0usize;
    let mut typed: Vec<String> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(body) = rest.strip_prefix("TYPE ") {
                let mut parts = body.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !is_name(name) {
                    return Err(err(lineno, format!("bad metric name {name:?} in TYPE")));
                }
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(err(lineno, format!("unknown TYPE kind {kind:?}")));
                }
                if parts.next().is_some() {
                    return Err(err(lineno, "trailing tokens after TYPE".to_string()));
                }
                if typed.iter().any(|t| t == name) {
                    return Err(err(lineno, format!("duplicate TYPE for {name}")));
                }
                typed.push(name.to_string());
            } else if let Some(body) = rest.strip_prefix("HELP ") {
                let name = body.split_whitespace().next().unwrap_or("");
                if !is_name(name) {
                    return Err(err(lineno, format!("bad metric name {name:?} in HELP")));
                }
            }
            // Other comments are free-form.
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let name_end = line
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
            .unwrap_or(line.len());
        let name = &line[..name_end];
        if !is_name(name) {
            return Err(err(lineno, format!("bad metric name {name:?}")));
        }
        let mut rest = &line[name_end..];
        if rest.starts_with('{') {
            rest = parse_labels(rest).map_err(|m| err(lineno, m))?;
        }
        let mut parts = rest.split_whitespace();
        let value = parts
            .next()
            .ok_or_else(|| err(lineno, "missing sample value".to_string()))?;
        if !is_value(value) {
            return Err(err(lineno, format!("bad sample value {value:?}")));
        }
        if let Some(ts) = parts.next() {
            if ts.parse::<i64>().is_err() {
                return Err(err(lineno, format!("bad timestamp {ts:?}")));
            }
        }
        if parts.next().is_some() {
            return Err(err(lineno, "trailing tokens after sample".to_string()));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn demo_registry() -> Registry {
        let r = Registry::new();
        r.counter("demo_ops_total", "operations served").add(42);
        r.gauge_with(
            "demo_occupancy",
            "busy fraction",
            vec![("stage".into(), "read".into())],
        )
        .set(0.75);
        let h = r.histogram("demo_latency_nanoseconds", "op latency");
        for i in 1..=100u64 {
            h.record(i * 1000);
        }
        r
    }

    #[test]
    fn rendered_output_validates() {
        let text = demo_registry().render_prometheus();
        let n = validate_exposition(&text).expect("own output must parse");
        // 1 counter + 1 gauge + histogram (buckets + +Inf + sum + count).
        assert!(n >= 6, "expected several samples, got {n}\n{text}");
        assert!(text.contains("# TYPE demo_ops_total counter"));
        assert!(text.contains("demo_ops_total 42"));
        assert!(text.contains("demo_occupancy{stage=\"read\"} 0.75"));
        assert!(text.contains("demo_latency_nanoseconds_bucket{le=\"+Inf\"} 100"));
        assert!(text.contains("demo_latency_nanoseconds_count 100"));
    }

    #[test]
    fn histogram_bucket_series_is_cumulative_and_ends_at_count() {
        let text = demo_registry().render_prometheus();
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("demo_latency_nanoseconds_bucket") {
                let v: u64 = rest.split_whitespace().last().unwrap().parse().unwrap();
                assert!(v >= last, "bucket series must be cumulative");
                last = v;
                bucket_lines += 1;
            }
        }
        assert!(bucket_lines > 2);
        assert_eq!(last, 100, "+Inf bucket equals total count");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with(
            "demo_weird_total",
            "",
            vec![("path".into(), "a\"b\\c\nd".into())],
        );
        let text = r.render_prometheus();
        assert!(text.contains(r#"path="a\"b\\c\nd""#), "got: {text}");
        validate_exposition(&text).expect("escaped output must still parse");
    }

    #[test]
    fn validator_rejects_garbage() {
        for (bad, why) in [
            ("demo_ops_total", "missing value"),
            ("demo_ops_total forty", "non-numeric value"),
            ("0bad 1", "bad name"),
            ("demo{x=unquoted} 1", "unquoted label"),
            ("demo{x=\"open} 1", "unterminated label value"),
            ("# TYPE demo_x flavor", "unknown kind"),
            ("demo_ops_total 1 2 3", "trailing tokens"),
        ] {
            assert!(validate_exposition(bad).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn validator_accepts_specials_and_timestamps() {
        let ok = "demo_a 1\ndemo_b +Inf\ndemo_c NaN\ndemo_d 1.5 1700000000\n";
        assert_eq!(validate_exposition(ok).unwrap(), 4);
    }

    #[test]
    fn validator_counts_only_sample_lines() {
        let text = "# a comment\n\n# TYPE demo_x counter\ndemo_x 1\n";
        assert_eq!(validate_exposition(text).unwrap(), 1);
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let json = demo_registry().snapshot().to_json();
        assert!(json.starts_with("{\"samples\":["));
        assert!(json.contains("\"name\":\"demo_ops_total\""));
        assert!(json.contains("\"kind\":\"counter\",\"value\":42"));
        assert!(json.contains("\"kind\":\"histogram\",\"count\":100"));
        assert!(json.contains("\"labels\":{\"stage\":\"read\"}"));
        // Balanced braces/brackets outside strings — a cheap structural check.
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
