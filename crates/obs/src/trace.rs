//! Structured event trace of the compaction lifecycle.
//!
//! A [`TraceLog`] is a bounded ring of [`TraceEvent`]s: each event is a
//! static kind string (`"compaction_start"`, `"flush_done"`, …) plus a
//! small set of numeric fields, stamped with a sequence number and the
//! elapsed time since the log was created. The ring keeps the most
//! recent `capacity` events, so a long-running engine pays a fixed
//! memory cost and the tail of the story is always available — the same
//! trade RocksDB's `EventListener` + info-log make, without the string
//! formatting on the hot path.
//!
//! Recording takes a short `parking_lot` mutex; events are emitted at
//! state transitions (per flush / per compaction / per stage), not per
//! key, so this is far off the data path.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

/// One lifecycle event: what happened, when, and the numbers attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone sequence number (never reset, survives ring eviction).
    pub seq: u64,
    /// Elapsed time since the [`TraceLog`] was created.
    pub at: Duration,
    /// Static event kind, e.g. `"compaction_start"`.
    pub kind: &'static str,
    /// Numeric payload, e.g. `[("level", 1), ("input_bytes", 4096)]`.
    pub fields: Vec<(&'static str, u64)>,
}

/// Bounded ring of [`TraceEvent`]s.
///
/// ```
/// let log = pcp_obs::TraceLog::new(128);
/// log.record("flush_start", &[("memtable_bytes", 4096)]);
/// log.record("flush_done", &[("sst_bytes", 2048)]);
/// assert_eq!(log.len(), 2);
/// assert_eq!(log.events()[0].kind, "flush_start");
/// ```
pub struct TraceLog {
    start: Instant,
    next_seq: AtomicU64,
    ring: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
}

impl TraceLog {
    /// A log keeping the most recent `capacity` events (min 1).
    pub fn new(capacity: usize) -> TraceLog {
        let capacity = capacity.max(1);
        TraceLog {
            start: Instant::now(),
            next_seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    /// Appends one event, evicting the oldest when full.
    pub fn record(&self, kind: &'static str, fields: &[(&'static str, u64)]) {
        let ev = TraceEvent {
            seq: self.next_seq.fetch_add(1, Relaxed),
            at: self.start.elapsed(),
            kind,
            fields: fields.to_vec(),
        };
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(ev);
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Number of retained events (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq.load(Relaxed)
    }

    /// Serializes the retained events as a JSON array, oldest first:
    /// `[{"seq":0,"at_nanos":…,"kind":"…","fields":{"level":1}},…]`.
    pub fn to_json(&self) -> String {
        let events = self.events();
        let items: Vec<String> = events
            .iter()
            .map(|e| {
                let fields: Vec<String> = e
                    .fields
                    .iter()
                    .map(|(k, v)| format!("\"{}\":{v}", crate::expo::json_escape(k)))
                    .collect();
                format!(
                    "{{\"seq\":{},\"at_nanos\":{},\"kind\":\"{}\",\"fields\":{{{}}}}}",
                    e.seq,
                    e.at.as_nanos().min(u64::MAX as u128),
                    crate::expo::json_escape(e.kind),
                    fields.join(",")
                )
            })
            .collect();
        format!("[{}]", items.join(","))
    }
}

impl std::fmt::Debug for TraceLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceLog")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_monotone_seq_and_time() {
        let log = TraceLog::new(16);
        log.record("a", &[("x", 1)]);
        log.record("b", &[]);
        log.record("c", &[("x", 2), ("y", 3)]);
        let events = log.events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.kind).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
            assert!(w[0].at <= w[1].at);
        }
        assert_eq!(events[2].fields, vec![("x", 2), ("y", 3)]);
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_seq() {
        let log = TraceLog::new(4);
        for _ in 0..10 {
            log.record("tick", &[]);
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.recorded(), 10);
        let seqs: Vec<u64> = log.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "most recent events retained");
    }

    #[test]
    fn capacity_zero_is_clamped() {
        let log = TraceLog::new(0);
        log.record("only", &[]);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn concurrent_recording_keeps_every_seq_once() {
        let log = std::sync::Arc::new(TraceLog::new(10_000));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let log = std::sync::Arc::clone(&log);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        log.record("tick", &[]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut seqs: Vec<u64> = log.events().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 8000, "no sequence number lost or duplicated");
    }

    #[test]
    fn json_output_is_structured() {
        let log = TraceLog::new(8);
        log.record("compaction_start", &[("level", 1), ("inputs", 5)]);
        let json = log.to_json();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"kind\":\"compaction_start\""));
        assert!(json.contains("\"fields\":{\"level\":1,\"inputs\":5}"));
        assert_eq!(TraceLog::new(1).to_json(), "[]");
    }
}
