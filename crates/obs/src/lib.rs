//! # pcp-obs
//!
//! The unified observability layer: one registry, one histogram, one
//! trace format for every crate in the workspace. The full metrics
//! contract — every name, unit, type, and emitter — is documented in
//! `OBSERVABILITY.md` at the repository root; this crate provides the
//! mechanism.
//!
//! Design constraints, in order:
//!
//! 1. **Lock-cheap on the hot path.** Recording into a [`Counter`],
//!    [`Gauge`], or [`Histogram`] is a relaxed atomic operation; the
//!    registry's `parking_lot` mutex is taken only on registration and on
//!    scrape (both rare). Nothing on the write path, read path, or inside
//!    a compaction stage ever blocks on observability.
//! 2. **Adoptable by existing structs.** Components that already keep
//!    their own atomics ([`pcp_lsm::Metrics`], `DeviceStats`, the
//!    [`CompactionProfile`] step accumulators) export them through
//!    closure-backed collectors ([`Registry::register_fn_counter`] /
//!    [`Registry::register_fn_gauge`]) instead of being rewritten onto
//!    registry-owned storage.
//! 3. **Two export formats from one snapshot.** A [`MetricsSnapshot`] is
//!    plain data; [`MetricsSnapshot::render_prometheus`] produces the
//!    text exposition format served by the KV service's `METRICS` wire
//!    op, and [`MetricsSnapshot::to_json`] produces the machine-readable
//!    `BENCH_obs.json`-style output the bench harnesses emit.
//! 4. **Consumable from below the engine.** This crate depends on nothing
//!    in the workspace, so even interface crates can accept a
//!    [`Registry`]: the executor trait's `register_metrics` hook is how
//!    the adaptive executor exports its `pcp_sched_executor_choice_total`
//!    counters and the sharded engine exports the rest of the
//!    `pcp_sched_*` scheduler family (see `OBSERVABILITY.md` §2.1).
//!
//! [`pcp_lsm::Metrics`]: https://docs.rs/pcp-lsm
//! [`CompactionProfile`]: https://docs.rs/pcp-core

pub mod expo;
pub mod histogram;
pub mod metric;
pub mod registry;
pub mod trace;

pub use expo::{validate_exposition, ExpoError};
pub use histogram::{Histogram, HistogramSnapshot};
pub use metric::{Counter, Gauge};
pub use registry::{MetricsSnapshot, Registry, Sample, SampleValue};
pub use trace::{TraceEvent, TraceLog};
