//! Log-bucketed concurrent histogram over `u64` values.
//!
//! Fixed memory (512 buckets, 4 KiB), lock-free recording, ~12.5 %
//! worst-case bucket width: buckets are powers of 2^(1/8) — 8 sub-buckets
//! per octave with 3 mantissa bits, 64 octaves covering the full `u64`
//! range (values 0–23 get exact buckets). This is the one histogram
//! implementation in the workspace: operation latencies, device service
//! times, and any other long-tailed quantity all record here, so their
//! quantiles are comparable by construction.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// 8 sub-buckets per octave, 64 octaves: the whole `u64` range.
const SUB: usize = 8;
const BUCKETS: usize = SUB * 64;

/// Concurrent log-bucketed histogram.
///
/// ```
/// let h = pcp_obs::Histogram::new();
/// h.record(1000);
/// h.record(2000);
/// assert_eq!(h.count(), 2);
/// assert!(h.quantile(0.5) >= 1000 * 7 / 8);
/// ```
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish_non_exhaustive()
    }
}

/// `a = min(a + v, u64::MAX)` — the sum must not wrap when fed extreme
/// samples (e.g. `u64::MAX`), or the mean turns nonsense.
fn saturating_fetch_add(a: &AtomicU64, v: u64) {
    let mut cur = a.load(Relaxed);
    loop {
        let next = cur.saturating_add(v);
        match a.compare_exchange_weak(cur, next, Relaxed, Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for `v`: exact below 24, then one octave per 8
    /// buckets with 3 bits of mantissa.
    #[inline]
    pub(crate) fn bucket_of(v: u64) -> usize {
        if v < 24 {
            return v as usize;
        }
        let log2 = 63 - v.leading_zeros() as usize;
        let frac = (v >> (log2 - 3)) & 0x7;
        (log2 * SUB + frac as usize).min(BUCKETS - 1)
    }

    /// Lower bound of bucket `i` (smallest value mapping to it).
    pub(crate) fn bucket_floor(i: usize) -> u64 {
        if i < 24 {
            return i as u64;
        }
        let log2 = i / SUB;
        let frac = (i % SUB) as u64;
        (1u64 << log2) + (frac << (log2 - 3))
    }

    /// Inclusive upper bound of bucket `i` (largest value mapping to it).
    pub(crate) fn bucket_ceil(i: usize) -> u64 {
        if i < 24 {
            // Exact buckets hold exactly one value. (Buckets 24–35 are
            // unreachable: values ≥ 24 start at index 36.)
            return i as u64;
        }
        if i + 1 >= BUCKETS {
            return u64::MAX;
        }
        Self::bucket_floor(i + 1) - 1
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        saturating_fetch_add(&self.sum, v);
        self.max.fetch_max(v, Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Approximate quantile `q` ∈ \[0, 1\] (the matching bucket's lower
    /// bound; 0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((n as f64 * q).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Relaxed);
            if seen >= rank {
                return Self::bucket_floor(i);
            }
        }
        self.max()
    }

    /// [`Histogram::quantile`] as a [`Duration`] of nanoseconds.
    pub fn quantile_duration(&self, q: f64) -> Duration {
        Duration::from_nanos(self.quantile(q))
    }

    /// Folds every sample of `other` into `self` (bucket-wise; the merged
    /// quantiles are exact at bucket resolution). `other` is unchanged.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Relaxed);
            if n > 0 {
                mine.fetch_add(n, Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Relaxed);
        saturating_fetch_add(&self.sum, other.sum());
        self.max.fetch_max(other.max(), Relaxed);
    }

    /// Plain-data copy: non-empty buckets only.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Relaxed);
            if n > 0 {
                buckets.push((i, n));
            }
        }
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
        }
    }
}

/// Immutable view of a [`Histogram`] at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(bucket index, sample count)` for every non-empty bucket, in
    /// ascending bucket order.
    pub buckets: Vec<(usize, u64)>,
    /// Total samples.
    pub count: u64,
    /// Sum of samples (saturating).
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Approximate quantile `q` ∈ \[0, 1\] (bucket lower bound).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Histogram::bucket_floor(i);
            }
        }
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Cumulative `(inclusive upper bound, count of samples ≤ bound)`
    /// pairs over the non-empty buckets — the Prometheus `_bucket{le=…}`
    /// series (the exposition layer appends the `+Inf` bucket).
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.buckets.len());
        let mut running = 0u64;
        for &(i, n) in &self.buckets {
            running += n;
            out.push((Histogram::bucket_ceil(i), running));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_recorded_exactly() {
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn u64_max_is_representable_and_does_not_wrap_the_sum() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.max(), u64::MAX);
        // The quantile lands in the top bucket.
        let q = h.quantile(0.99);
        assert_eq!(q, Histogram::bucket_floor(BUCKETS - 1));
        assert!(q > u64::MAX / 2);
    }

    #[test]
    fn bucket_mapping_is_monotone_and_round_trips() {
        let mut prev = 0usize;
        for v in [0u64, 1, 2, 3, 7, 8, 23, 24, 25, 100, 1000, 1 << 20, 1 << 40, 1 << 62, u64::MAX]
        {
            let b = Histogram::bucket_of(v);
            assert!(b >= prev, "bucket({v}) = {b} < {prev}");
            prev = b;
            // floor ≤ v ≤ ceil, and the floor maps back to the same bucket.
            assert!(Histogram::bucket_floor(b) <= v);
            assert!(v <= Histogram::bucket_ceil(b));
            assert_eq!(Histogram::bucket_of(Histogram::bucket_floor(b)), b);
        }
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(Histogram::bucket_ceil(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn merge_of_two_histograms_preserves_counts_and_quantiles() {
        let a = Histogram::new();
        let b = Histogram::new();
        for i in 1..=1000u64 {
            a.record(i * 1000); // 1 µs … 1 ms
        }
        for i in 1..=1000u64 {
            b.record(i * 1_000_000); // 1 ms … 1 s
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 2000);
        assert_eq!(a.max(), 1_000_000_000);
        // Median of the merged distribution sits at the seam: the largest
        // a-samples / smallest b-samples (~1 ms).
        let p50 = a.quantile(0.5) as f64;
        assert!(
            (5e5..2e6).contains(&p50),
            "merged p50 {p50} should sit near 1e6"
        );
        // p99 comes from b's tail.
        assert!(a.quantile(0.99) as f64 >= 0.85 * 990_000_000.0);
        // Merging an empty histogram changes nothing.
        let before = a.snapshot();
        a.merge_from(&Histogram::new());
        assert_eq!(a.snapshot(), before);
    }

    #[test]
    fn merge_handles_saturated_sums() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(u64::MAX);
        b.record(u64::MAX);
        a.merge_from(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), u64::MAX);
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 1000);
        }
        let p50 = h.quantile(0.5) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 - 5e6).abs() / 5e6 < 0.15, "p50 {p50}");
        assert!((p99 - 9.9e6).abs() / 9.9e6 < 0.15, "p99 {p99}");
        assert!(h.quantile(1.0) >= h.quantile(0.5));
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::new();
        let mut x = 12345u64;
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x % 10_000_000);
        }
        let mut prev = 0u64;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let v = h.quantile(q);
            assert!(v >= prev, "quantile({q}) regressed");
            prev = v;
        }
    }

    #[test]
    fn snapshot_matches_live_view() {
        let h = Histogram::new();
        for i in 0..100u64 {
            h.record(i * 7919);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.max, 99 * 7919);
        for q in [0.25, 0.5, 0.9] {
            assert_eq!(snap.quantile(q), h.quantile(q));
        }
        let cumulative = snap.cumulative();
        assert_eq!(cumulative.last().unwrap().1, 100);
        // Cumulative counts are non-decreasing with increasing bounds.
        for w in cumulative.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn duration_round_trip() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(100));
        let p50 = h.quantile_duration(0.5).as_nanos() as f64;
        assert!((p50 - 1e5).abs() / 1e5 < 0.15, "p50 {p50}");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record((t + 1) * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 8000);
    }
}
