//! # pcp-codec
//!
//! The computation substrate of the pipelined-compaction LSM-tree: every CPU
//! cycle the paper attributes to compaction steps S2 (CHECKSUM), S3
//! (DECOMPRESS), S5 (COMPRESS) and S6 (RE-CHECKSUM) is spent inside this
//! crate.
//!
//! Contents:
//!
//! * [`crc32c`](mod@crc32c) — CRC-32C (Castagnoli) in software using the slicing-by-8
//!   technique, plus the masked-CRC convention used in block trailers.
//! * [`lz`] — a from-scratch byte-oriented LZ77 compressor in the Snappy
//!   format class (varint length header, literal/copy tags, greedy hash-table
//!   matching). Compression is deliberately the most expensive computation
//!   step and decompression the cheapest, matching the paper's profile.
//! * [`frames`] — independent per-frame compression on top of [`lz`], the
//!   unit of seek-in-compressed-form used by the block encoding v2 in
//!   `pcp-sstable`.
//! * [`varint`] — LEB128-style unsigned varints shared by the block format,
//!   the WAL and the manifest.
//! * [`le`] — bounds-checked little-endian integer reads shared by every
//!   wire format (WAL, SSTable trailers, service frames).
//!
//! All functions are pure and allocation-conscious: the hot paths take
//! `&mut Vec<u8>` outputs so buffers can be reused across pipeline stages.

pub mod crc32c;
pub mod frames;
pub mod le;
pub mod lz;
pub mod varint;

pub use crc32c::{crc32c, mask_crc, unmask_crc, Crc32c};
pub use frames::{compress_frame, decompress_frame};
pub use le::{read_u32_le, read_u64_le};
pub use lz::{compress, decompress, decompressed_len, max_compressed_len, LzError};
pub use varint::{
    decode_u32, decode_u64, encode_u32, encode_u64, encoded_len_u64, put_u32, put_u64,
    VarintError,
};
