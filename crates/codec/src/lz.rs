//! A from-scratch LZ77 block compressor in the Snappy format class.
//!
//! The paper's experiments run LevelDB with snappy; compaction step S5
//! (COMPRESS) is "almost the most costly" computation step and S3
//! (DECOMPRESS) "takes the least amount of time". This implementation
//! reproduces that cost asymmetry: compression runs a hash-table match
//! search over the input, decompression is a straight-line tag interpreter.
//!
//! ## Format
//!
//! ```text
//! [varint: decompressed length] [tag]...
//! tag & 0b11 == 0b00  literal   — upper 6 bits = len-1 (0..=59), or
//!                                 60..=63 => 1..=4 extra little-endian
//!                                 length bytes follow (value = len-1)
//! tag & 0b11 == 0b01  copy-1    — len = 4 + bits[2..5] (4..=11),
//!                                 offset = bits[5..8] << 8 | next byte
//!                                 (1..=2047)
//! tag & 0b11 == 0b10  copy-2    — len = 1 + bits[2..8] (1..=64),
//!                                 offset = next two bytes LE (1..=65535)
//! tag & 0b11 == 0b11  copy-4    — len = 1 + bits[2..8] (1..=64),
//!                                 offset = next four bytes LE
//! ```
//!
//! Copies may overlap their own output (offset < len), which encodes runs.
//! This is wire-compatible in spirit — not in bytes — with Snappy; we never
//! claim interoperability, only the same computational profile.

use crate::varint;

/// Minimum match length worth emitting as a copy.
const MIN_MATCH: usize = 4;
/// Hash table size (log2). 14 bits = 16384 entries = 64 KiB of u32 slots.
const HASH_BITS: u32 = 14;
const HASH_SIZE: usize = 1 << HASH_BITS;
/// Multiplicative hash constant (Knuth).
const HASH_MUL: u32 = 0x9E37_79B1;
/// Inputs shorter than this skip the match search entirely.
const MIN_COMPRESS_INPUT: usize = 16;

/// Errors produced while decompressing a corrupt or truncated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LzError {
    /// Stream ended mid-tag or mid-payload.
    Truncated,
    /// A copy referenced data before the start of the output.
    BadOffset,
    /// Output did not match the length declared in the header.
    LengthMismatch,
    /// The declared decompressed length is implausibly large.
    LengthOverflow,
    /// The length header itself is malformed.
    BadHeader,
}

impl std::fmt::Display for LzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzError::Truncated => write!(f, "compressed stream truncated"),
            LzError::BadOffset => write!(f, "copy offset out of range"),
            LzError::LengthMismatch => write!(f, "decompressed length mismatch"),
            LzError::LengthOverflow => write!(f, "declared length too large"),
            LzError::BadHeader => write!(f, "malformed length header"),
        }
    }
}

impl std::error::Error for LzError {}

/// Upper bound on the compressed size of `len` input bytes.
///
/// Worst case is incompressible data: one maximal literal per 2^32-ish bytes
/// plus the header; we bound conservatively with per-64KiB overhead.
pub fn max_compressed_len(len: usize) -> usize {
    // varint header (<=10) + raw bytes + literal tag overhead (5 bytes per
    // literal, one literal per full input in the worst emission pattern we
    // generate; be generous: one 5-byte tag per 64 bytes of input).
    10 + len + len / 64 + 8
}

#[inline(always)]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(HASH_MUL) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input`, appending to `out`. Returns bytes appended.
///
/// `out` is not cleared: pipeline stages reuse one output buffer per
/// sub-task and compress multiple blocks back to back.
pub fn compress(input: &[u8], out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.reserve(max_compressed_len(input.len()));
    varint::put_u64(out, input.len() as u64);

    if input.len() < MIN_COMPRESS_INPUT {
        if !input.is_empty() {
            emit_literal(out, input);
        }
        return out.len() - start;
    }

    // Hash table of candidate positions; 0 means "empty" so position 0 is
    // sacrificed (it can still be found via later duplicates).
    let mut table = vec![0u32; HASH_SIZE];
    let mut pos = 0usize; // current scan position
    let mut lit_start = 0usize; // start of the pending literal run
    let limit = input.len() - MIN_MATCH; // last position a match can start

    while pos <= limit {
        let h = hash4(&input[pos..]);
        let candidate = table[h] as usize;
        table[h] = pos as u32;

        if candidate != 0
            && candidate < pos
            && pos - candidate <= u32::MAX as usize
            && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH]
        {
            // Extend the match forward.
            let mut len = MIN_MATCH;
            let max = input.len() - pos;
            while len < max && input[candidate + len] == input[pos + len] {
                len += 1;
            }
            if lit_start < pos {
                emit_literal(out, &input[lit_start..pos]);
            }
            emit_copy(out, pos - candidate, len);
            // Seed the table sparsely inside the match to find future
            // matches without paying a per-byte hash cost.
            let end = pos + len;
            let mut p = pos + 1;
            while p < end.min(limit + 1) {
                table[hash4(&input[p..])] = p as u32;
                p += 3;
            }
            pos = end;
            lit_start = end;
        } else {
            pos += 1;
        }
    }

    if lit_start < input.len() {
        emit_literal(out, &input[lit_start..]);
    }
    out.len() - start
}

fn emit_literal(out: &mut Vec<u8>, lit: &[u8]) {
    debug_assert!(!lit.is_empty());
    let n = lit.len() - 1;
    if n < 60 {
        out.push((n as u8) << 2);
    } else {
        // Count how many bytes the length needs (1..=4).
        let bytes = (u32::BITS - (n as u32).leading_zeros()).div_ceil(8).max(1) as usize;
        out.push((59 + bytes as u8) << 2);
        out.extend_from_slice(&(n as u32).to_le_bytes()[..bytes]);
    }
    out.extend_from_slice(lit);
}

fn emit_copy(out: &mut Vec<u8>, offset: usize, mut len: usize) {
    debug_assert!(offset >= 1);
    // Long matches are emitted as a sequence of <=64-byte copies.
    while len > 0 {
        if (4..=11).contains(&len) && offset < 2048 {
            out.push(0b01 | ((len as u8 - 4) << 2) | (((offset >> 8) as u8) << 5));
            out.push((offset & 0xFF) as u8);
            return;
        }
        let chunk = len.min(64);
        // Avoid leaving a tail shorter than MIN_MATCH that copy-1 can't
        // encode cheaply: split 65..=67 as 60 + remainder.
        let chunk = if len - chunk > 0 && len - chunk < MIN_MATCH {
            60
        } else {
            chunk
        };
        if offset < 65536 {
            out.push(0b10 | ((chunk as u8 - 1) << 2));
            out.extend_from_slice(&(offset as u16).to_le_bytes());
        } else {
            out.push(0b11 | ((chunk as u8 - 1) << 2));
            out.extend_from_slice(&(offset as u32).to_le_bytes());
        }
        len -= chunk;
    }
}

/// Reads the decompressed length declared in a compressed stream's header.
pub fn decompressed_len(input: &[u8]) -> Result<usize, LzError> {
    let (len, _) = varint::decode_u64(input).map_err(|_| LzError::BadHeader)?;
    usize::try_from(len).map_err(|_| LzError::LengthOverflow)
}

/// Hard cap on a single block's decompressed size (defence against corrupt
/// headers): 256 MiB, far above any SSTable block.
const MAX_DECOMPRESSED: usize = 256 << 20;

/// Decompresses `input`, appending to `out`. Returns bytes appended.
pub fn decompress(input: &[u8], out: &mut Vec<u8>) -> Result<usize, LzError> {
    let (declared, mut pos) =
        varint::decode_u64(input).map_err(|_| LzError::BadHeader)?;
    let declared = usize::try_from(declared).map_err(|_| LzError::LengthOverflow)?;
    if declared > MAX_DECOMPRESSED {
        return Err(LzError::LengthOverflow);
    }
    let base = out.len();
    out.reserve(declared);

    while pos < input.len() {
        let tag = input[pos];
        pos += 1;
        match tag & 0b11 {
            0b00 => {
                // Literal.
                let mut n = (tag >> 2) as usize;
                if n >= 60 {
                    let extra = n - 59; // 1..=4 length bytes
                    if pos + extra > input.len() {
                        return Err(LzError::Truncated);
                    }
                    let mut v = 0usize;
                    for i in 0..extra {
                        v |= (input[pos + i] as usize) << (8 * i);
                    }
                    n = v;
                    pos += extra;
                }
                let len = n + 1;
                if pos + len > input.len() {
                    return Err(LzError::Truncated);
                }
                if out.len() - base + len > declared {
                    return Err(LzError::LengthMismatch);
                }
                out.extend_from_slice(&input[pos..pos + len]);
                pos += len;
            }
            kind => {
                let (offset, len) = match kind {
                    0b01 => {
                        if pos >= input.len() {
                            return Err(LzError::Truncated);
                        }
                        let len = 4 + ((tag >> 2) & 0b111) as usize;
                        let offset = (((tag >> 5) as usize) << 8) | input[pos] as usize;
                        pos += 1;
                        (offset, len)
                    }
                    0b10 => {
                        if pos + 2 > input.len() {
                            return Err(LzError::Truncated);
                        }
                        let len = 1 + (tag >> 2) as usize;
                        let offset =
                            u16::from_le_bytes([input[pos], input[pos + 1]]) as usize;
                        pos += 2;
                        (offset, len)
                    }
                    _ => {
                        if pos + 4 > input.len() {
                            return Err(LzError::Truncated);
                        }
                        let len = 1 + (tag >> 2) as usize;
                        let offset = u32::from_le_bytes([
                            input[pos],
                            input[pos + 1],
                            input[pos + 2],
                            input[pos + 3],
                        ]) as usize;
                        pos += 4;
                        (offset, len)
                    }
                };
                let produced = out.len() - base;
                if offset == 0 || offset > produced {
                    return Err(LzError::BadOffset);
                }
                if produced + len > declared {
                    return Err(LzError::LengthMismatch);
                }
                // Overlapping copies must be byte-by-byte in the general
                // case; fast path for non-overlapping ranges.
                let src = out.len() - offset;
                if offset >= len {
                    out.extend_from_within(src..src + len);
                } else {
                    for i in 0..len {
                        let b = out[src + i];
                        out.push(b);
                    }
                }
            }
        }
    }

    if out.len() - base != declared {
        return Err(LzError::LengthMismatch);
    }
    Ok(declared)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        let mut comp = Vec::new();
        compress(data, &mut comp);
        let mut dec = Vec::new();
        decompress(&comp, &mut dec).expect("decompress");
        dec
    }

    #[test]
    fn empty_roundtrip() {
        assert_eq!(roundtrip(b""), b"");
    }

    #[test]
    fn tiny_inputs_roundtrip() {
        for len in 1..=MIN_COMPRESS_INPUT + 1 {
            let data: Vec<u8> = (0..len as u8).collect();
            assert_eq!(roundtrip(&data), data, "len {len}");
        }
    }

    #[test]
    fn run_of_identical_bytes_compresses_well() {
        let data = vec![0x42u8; 10_000];
        let mut comp = Vec::new();
        compress(&data, &mut comp);
        // Copies cap at 64 bytes, so a 10_000-byte run needs ~157 copy tags.
        assert!(comp.len() < 600, "run should compress, got {}", comp.len());
        let mut dec = Vec::new();
        decompress(&comp, &mut dec).unwrap();
        assert_eq!(dec, data);
    }

    #[test]
    fn repeated_phrase_compresses() {
        let data: Vec<u8> = b"the quick brown fox jumps over the lazy dog. "
            .iter()
            .cycle()
            .take(8192)
            .copied()
            .collect();
        let mut comp = Vec::new();
        compress(&data, &mut comp);
        assert!(
            comp.len() < data.len() / 4,
            "text should compress 4x, got {} of {}",
            comp.len(),
            data.len()
        );
        let mut dec = Vec::new();
        decompress(&comp, &mut dec).unwrap();
        assert_eq!(dec, data);
    }

    #[test]
    fn incompressible_data_stays_within_bound() {
        // xorshift pseudo-random bytes do not compress.
        let mut state = 0x12345678u64;
        let data: Vec<u8> = (0..65536)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        let mut comp = Vec::new();
        let n = compress(&data, &mut comp);
        assert!(n <= max_compressed_len(data.len()));
        let mut dec = Vec::new();
        decompress(&comp, &mut dec).unwrap();
        assert_eq!(dec, data);
    }

    #[test]
    fn overlapping_copy_offset_one() {
        // "aaaa..." forces offset-1 overlapping copies.
        let data = vec![b'a'; 100];
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn appends_without_clearing_out() {
        let mut comp = Vec::from(&b"prefix"[..]);
        compress(b"hello hello hello hello", &mut comp);
        assert_eq!(&comp[..6], b"prefix");
        let mut dec = Vec::from(&b"DEC"[..]);
        let n = decompress(&comp[6..], &mut dec).unwrap();
        assert_eq!(&dec[..3], b"DEC");
        assert_eq!(&dec[3..], b"hello hello hello hello");
        assert_eq!(n, 23);
    }

    #[test]
    fn truncated_stream_is_detected() {
        let mut comp = Vec::new();
        compress(b"some compressible data data data data", &mut comp);
        for cut in 1..comp.len() {
            // Every strict prefix must fail, never panic or return wrong data.
            let mut dec = Vec::new();
            let r = decompress(&comp[..cut], &mut dec);
            assert!(r.is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn bad_offset_is_detected() {
        // Header: len 4. Tag: copy-2 len 4, offset 9 (beyond produced=0).
        let stream = [4u8, 0b10 | (3 << 2), 9, 0];
        let mut dec = Vec::new();
        assert_eq!(decompress(&stream, &mut dec), Err(LzError::BadOffset));
    }

    #[test]
    fn declared_length_too_large_is_rejected() {
        let mut stream = Vec::new();
        varint::put_u64(&mut stream, (MAX_DECOMPRESSED + 1) as u64);
        let mut dec = Vec::new();
        assert_eq!(
            decompress(&stream, &mut dec),
            Err(LzError::LengthOverflow)
        );
    }

    #[test]
    fn length_header_readable_without_decompressing() {
        let mut comp = Vec::new();
        compress(&[7u8; 12345], &mut comp);
        assert_eq!(decompressed_len(&comp).unwrap(), 12345);
    }

    #[test]
    fn literal_longer_than_60_bytes() {
        // Incompressible 200-byte literal exercises the extended length path.
        let data: Vec<u8> = (0..200u8).map(|i| i.wrapping_mul(97).wrapping_add(i)).collect();
        assert_eq!(roundtrip(&data), data);
    }
}
