//! Independent compression frames: the unit of *seek in compressed form*.
//!
//! A frame is one [`lz`] stream compressed in isolation, so any frame of a
//! container can be decompressed without touching its neighbours. The block
//! encoding v2 in `pcp-sstable` compresses each restart interval as one
//! frame; a seek then decompresses only the frame holding the target
//! restart point instead of the whole block (bounded
//! seek-in-compressed-form, after LSM-OPD's search-on-compressed-data).
//!
//! This module owns only the per-frame byte contract; the directory that
//! names frames (lengths, restart indices, first keys) belongs to the
//! container format above it:
//!
//! * A frame that [`lz`] cannot shrink is **stored verbatim**. The encoder
//!   guarantees a compressed frame is strictly shorter than its input, so
//!   `stored_len == raw_len` is the unambiguous stored-verbatim signal —
//!   no per-frame flag byte is spent.
//! * The decoder is given the expected `raw_len` from the container
//!   directory and rejects any frame that does not reproduce exactly that
//!   many bytes, so a corrupt or truncated frame cannot silently yield a
//!   short (or oversized) restart interval.

use crate::lz::{self, LzError};

/// Compresses `input` as one independent frame, appending to `out`.
/// Returns the number of bytes appended. When compression would not
/// shrink the frame it is stored verbatim, which the encoder signals by
/// the returned length equalling `input.len()` (a compressed frame is
/// always strictly shorter).
pub fn compress_frame(input: &[u8], out: &mut Vec<u8>) -> usize {
    let start = out.len();
    lz::compress(input, out);
    if out.len() - start >= input.len() {
        out.truncate(start);
        out.extend_from_slice(input);
    }
    out.len() - start
}

/// Decompresses one frame produced by [`compress_frame`], appending
/// exactly `raw_len` bytes to `out`. `frame.len() == raw_len` means the
/// frame was stored verbatim. Any frame that decodes to a different
/// length — a truncated stream, a corrupted directory entry, or trailing
/// garbage — is rejected and `out` is left as it was.
pub fn decompress_frame(frame: &[u8], raw_len: usize, out: &mut Vec<u8>) -> Result<(), LzError> {
    if frame.len() == raw_len {
        out.extend_from_slice(frame);
        return Ok(());
    }
    let before = out.len();
    match lz::decompress(frame, out) {
        Ok(n) if n == raw_len => Ok(()),
        Ok(_) => {
            out.truncate(before);
            Err(LzError::LengthMismatch)
        }
        Err(e) => {
            out.truncate(before);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compressible_frame_roundtrips_shorter() {
        let input: Vec<u8> = b"abcdefgh".repeat(200);
        let mut frame = Vec::new();
        let n = compress_frame(&input, &mut frame);
        assert_eq!(n, frame.len());
        assert!(frame.len() < input.len());
        let mut out = Vec::new();
        decompress_frame(&frame, input.len(), &mut out).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn incompressible_frame_is_stored_verbatim() {
        // A short high-entropy input: LZ has nothing to match.
        let input: Vec<u8> = (0u16..64).map(|i| (i * 37 % 251) as u8).collect();
        let mut frame = Vec::new();
        let n = compress_frame(&input, &mut frame);
        assert_eq!(n, input.len());
        assert_eq!(frame, input);
        let mut out = Vec::new();
        decompress_frame(&frame, input.len(), &mut out).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn empty_frame_roundtrips() {
        let mut frame = Vec::new();
        assert_eq!(compress_frame(&[], &mut frame), 0);
        assert!(frame.is_empty());
        let mut out = Vec::new();
        decompress_frame(&frame, 0, &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn wrong_raw_len_is_rejected_and_out_untouched() {
        let input: Vec<u8> = b"xyzw".repeat(100);
        let mut frame = Vec::new();
        compress_frame(&input, &mut frame);
        let mut out = vec![42u8; 3];
        assert!(decompress_frame(&frame, input.len() + 1, &mut out).is_err());
        assert_eq!(out, vec![42u8; 3]);
        assert!(decompress_frame(&frame, input.len() - 1, &mut out).is_err());
        assert_eq!(out, vec![42u8; 3]);
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let input: Vec<u8> = b"hello world ".repeat(64);
        let mut frame = Vec::new();
        let n = compress_frame(&input, &mut frame);
        assert!(n < input.len());
        for cut in [1, n / 2, n - 1] {
            let mut out = Vec::new();
            assert!(
                decompress_frame(&frame[..cut], input.len(), &mut out).is_err(),
                "cut at {cut} must not roundtrip"
            );
        }
    }
}
