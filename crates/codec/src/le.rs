//! Bounds-checked little-endian integer reads.
//!
//! The wire formats in this workspace (WAL records, SSTable trailers,
//! service frames) carry fixed-width little-endian integers at offsets
//! that are validated by a length check just before the read. These
//! helpers make the read itself total: an out-of-range offset yields
//! `None` instead of a panicking slice conversion, so callers propagate
//! a corruption error rather than aborting the process on a malformed
//! input (enforced repo-wide by `pcp-lint` rule L3).

/// Reads the little-endian `u32` at `buf[off..off + 4]`, or `None` when
/// the range falls outside `buf`.
#[inline]
pub fn read_u32_le(buf: &[u8], off: usize) -> Option<u32> {
    let end = off.checked_add(4)?;
    let bytes = buf.get(off..end)?;
    let mut fixed = [0u8; 4];
    fixed.copy_from_slice(bytes);
    Some(u32::from_le_bytes(fixed))
}

/// Reads the little-endian `u64` at `buf[off..off + 8]`, or `None` when
/// the range falls outside `buf`.
#[inline]
pub fn read_u64_le(buf: &[u8], off: usize) -> Option<u64> {
    let end = off.checked_add(8)?;
    let bytes = buf.get(off..end)?;
    let mut fixed = [0u8; 8];
    fixed.copy_from_slice(bytes);
    Some(u64::from_le_bytes(fixed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_bounds_reads() {
        let buf = [1u8, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0];
        assert_eq!(read_u32_le(&buf, 0), Some(1));
        assert_eq!(read_u32_le(&buf, 4), Some(2));
        assert_eq!(read_u64_le(&buf, 4), Some(2));
    }

    #[test]
    fn out_of_bounds_is_none_not_panic() {
        let buf = [0u8; 6];
        assert_eq!(read_u32_le(&buf, 2), Some(0));
        assert_eq!(read_u32_le(&buf, 3), None);
        assert_eq!(read_u64_le(&buf, 0), None);
        assert_eq!(read_u32_le(&buf, usize::MAX), None, "offset overflow");
    }
}
