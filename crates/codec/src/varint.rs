//! LEB128-style unsigned varints.
//!
//! Shared by the SSTable block format (shared/unshared key lengths, value
//! lengths), the compressor's length header, the WAL and the manifest. Small
//! values — by far the common case for 4 KB blocks of 116-byte entries —
//! encode in one byte.

/// Error returned when a varint cannot be decoded from the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarintError {
    /// The input ended in the middle of a varint.
    Truncated,
    /// The encoding exceeded the maximum width for the target type.
    Overflow,
}

impl std::fmt::Display for VarintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarintError::Truncated => write!(f, "truncated varint"),
            VarintError::Overflow => write!(f, "varint overflows target type"),
        }
    }
}

impl std::error::Error for VarintError {}

/// Appends `v` to `out` as a varint. Returns the number of bytes written.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, mut v: u64) -> usize {
    let mut n = 0;
    loop {
        n += 1;
        if v < 0x80 {
            out.push(v as u8);
            return n;
        }
        out.push((v as u8 & 0x7F) | 0x80);
        v >>= 7;
    }
}

/// Appends `v` to `out` as a varint (32-bit convenience wrapper).
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) -> usize {
    put_u64(out, v as u64)
}

/// Encodes `v` into a fresh buffer (convenience, allocates).
pub fn encode_u64(v: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(10);
    put_u64(&mut out, v);
    out
}

/// Encodes `v` into a fresh buffer (32-bit convenience wrapper).
pub fn encode_u32(v: u32) -> Vec<u8> {
    encode_u64(v as u64)
}

/// Number of bytes [`put_u64`] would write for `v`.
#[inline]
pub fn encoded_len_u64(v: u64) -> usize {
    // 1 + floor(bits/7); bits==0 still needs one byte.
    let bits = 64 - (v | 1).leading_zeros() as usize;
    bits.div_ceil(7).max(1)
}

/// Decodes a varint `u64` from the front of `input`.
///
/// Returns the value and the number of bytes consumed.
#[inline]
pub fn decode_u64(input: &[u8]) -> Result<(u64, usize), VarintError> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(VarintError::Overflow);
        }
        result |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok((result, i + 1));
        }
        shift += 7;
    }
    Err(VarintError::Truncated)
}

/// Decodes a varint `u32` from the front of `input`.
#[inline]
pub fn decode_u32(input: &[u8]) -> Result<(u32, usize), VarintError> {
    let (v, n) = decode_u64(input)?;
    if v > u32::MAX as u64 {
        return Err(VarintError::Overflow);
    }
    Ok((v as u32, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_values() {
        for v in [
            0u64,
            1,
            0x7F,
            0x80,
            0x3FFF,
            0x4000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let enc = encode_u64(v);
            assert_eq!(enc.len(), encoded_len_u64(v), "len mismatch for {v}");
            let (dec, n) = decode_u64(&enc).unwrap();
            assert_eq!(dec, v);
            assert_eq!(n, enc.len());
        }
    }

    #[test]
    fn single_byte_values_encode_in_one_byte() {
        for v in 0u64..0x80 {
            assert_eq!(encode_u64(v), vec![v as u8]);
        }
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut enc = encode_u64(u64::MAX);
        enc.pop();
        assert_eq!(decode_u64(&enc), Err(VarintError::Truncated));
        assert_eq!(decode_u64(&[]), Err(VarintError::Truncated));
    }

    #[test]
    fn overwide_encoding_is_overflow() {
        // 11 continuation bytes can never be a valid u64.
        let bad = [0xFFu8; 11];
        assert_eq!(decode_u64(&bad), Err(VarintError::Overflow));
    }

    #[test]
    fn u32_rejects_values_above_u32_max() {
        let enc = encode_u64(u32::MAX as u64 + 1);
        assert_eq!(decode_u32(&enc), Err(VarintError::Overflow));
        let ok = encode_u64(u32::MAX as u64);
        assert_eq!(decode_u32(&ok).unwrap().0, u32::MAX);
    }

    #[test]
    fn decode_consumes_only_the_varint() {
        let mut buf = encode_u64(300);
        buf.extend_from_slice(b"tail");
        let (v, n) = decode_u64(&buf).unwrap();
        assert_eq!(v, 300);
        assert_eq!(&buf[n..], b"tail");
    }
}
