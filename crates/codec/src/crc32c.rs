//! CRC-32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum LevelDB uses on
//! every data block, computed here in software with slicing-by-8.
//!
//! Compaction step S2 verifies this CRC on every block read from disk and
//! step S6 recomputes it for every block written, so this routine is one of
//! the calibrated computation costs fed into the pipeline model.
//!
//! The slicing-by-8 algorithm processes eight input bytes per iteration using
//! eight 256-entry lookup tables; it is roughly 6-8x faster than the
//! bit-at-a-time reference implementation while remaining portable (no SSE4.2
//! `crc32` instruction dependency).

/// Reversed representation of the Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Number of slicing tables (bytes consumed per main-loop iteration).
const SLICES: usize = 8;

/// Lookup tables, generated at compile time.
static TABLES: [[u32; 256]; SLICES] = build_tables();

const fn build_tables() -> [[u32; 256]; SLICES] {
    let mut tables = [[0u32; 256]; SLICES];
    // Table 0: classic byte-at-a-time table.
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // Tables 1..8: table[k][i] = advance table[k-1][i] by one zero byte.
    let mut k = 1;
    while k < SLICES {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// Computes the CRC-32C of `data` in one shot.
///
/// ```
/// // RFC 3720 test vector: 32 bytes of zeros.
/// assert_eq!(pcp_codec::crc32c(&[0u8; 32]), 0x8A91_36AA);
/// ```
#[inline]
pub fn crc32c(data: &[u8]) -> u32 {
    let mut c = Crc32c::new();
    c.update(data);
    c.finalize()
}

/// Incremental CRC-32C state, for checksumming data that arrives in chunks
/// (e.g. a WAL record split across buffers).
#[derive(Debug, Clone)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// Creates a fresh checksum state.
    #[inline]
    pub fn new() -> Self {
        Crc32c { state: !0u32 }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            // Fold the current CRC into the first four bytes, then slice.
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][chunk[4] as usize]
                ^ TABLES[2][chunk[5] as usize]
                ^ TABLES[1][chunk[6] as usize]
                ^ TABLES[0][chunk[7] as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Returns the final CRC value. The state may keep being updated; this is
    /// a snapshot, matching the behaviour of rolling checksums.
    #[inline]
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

/// Offset used by the masking scheme below.
const MASK_DELTA: u32 = 0xA282_EAD8;

/// Masks a CRC so that checksumming data that *contains* embedded CRCs does
/// not degenerate (LevelDB convention: rotate and add a constant).
#[inline]
pub fn mask_crc(crc: u32) -> u32 {
    crc.rotate_right(15).wrapping_add(MASK_DELTA)
}

/// Inverse of [`mask_crc`].
#[inline]
pub fn unmask_crc(masked: u32) -> u32 {
    masked.wrapping_sub(MASK_DELTA).rotate_left(15)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-at-a-time reference implementation used to cross-check slicing.
    fn crc32c_reference(data: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
        }
        !crc
    }

    #[test]
    fn rfc3720_zero_vector() {
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn rfc3720_ones_vector() {
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn rfc3720_ascending_vector() {
        let data: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&data), 0x46DD_794E);
    }

    #[test]
    fn rfc3720_descending_vector() {
        let data: Vec<u8> = (0u8..32).rev().collect();
        assert_eq!(crc32c(&data), 0x113F_DB5C);
    }

    #[test]
    fn ascii_123456789() {
        // Canonical check value for CRC-32C.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32c(&[]), 0);
    }

    #[test]
    fn matches_reference_on_unaligned_lengths() {
        let data: Vec<u8> = (0..1021).map(|i| (i * 131 % 251) as u8).collect();
        for len in [0, 1, 3, 7, 8, 9, 15, 16, 63, 255, 1021] {
            assert_eq!(
                crc32c(&data[..len]),
                crc32c_reference(&data[..len]),
                "length {len}"
            );
        }
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..4096).map(|i| (i % 256) as u8).collect();
        let oneshot = crc32c(&data);
        for split in [0, 1, 7, 8, 100, 4095, 4096] {
            let mut c = Crc32c::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn mask_roundtrip() {
        for crc in [0u32, 1, 0xDEAD_BEEF, u32::MAX, 0x8A91_36AA] {
            assert_eq!(unmask_crc(mask_crc(crc)), crc);
            // Masking must actually change the value (for all our vectors).
            assert_ne!(mask_crc(crc), crc);
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..512).map(|i| (i * 7 % 256) as u8).collect();
        let clean = crc32c(&data);
        let mut corrupt = data.clone();
        for bit in [0usize, 100, 511 * 8 + 7] {
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32c(&corrupt), clean, "bit {bit} undetected");
            corrupt[bit / 8] ^= 1 << (bit % 8);
        }
    }
}
