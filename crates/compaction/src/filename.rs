//! File naming conventions (LevelDB-compatible in spirit).
//!
//! * `NNNNNN.sst` — SSTable
//! * `NNNNNN.log` — write-ahead log
//! * `MANIFEST-NNNNNN` — version-edit log
//! * `CURRENT` — name of the live manifest

/// Kinds of files a database directory contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    Table,
    Wal,
    Manifest,
    Current,
    Temp,
}

/// `NNNNNN.sst`
pub fn table_file(number: u64) -> String {
    format!("{number:06}.sst")
}

/// `NNNNNN.log`
pub fn wal_file(number: u64) -> String {
    format!("{number:06}.log")
}

/// `MANIFEST-NNNNNN`
pub fn manifest_file(number: u64) -> String {
    format!("MANIFEST-{number:06}")
}

/// The CURRENT pointer file.
pub const CURRENT: &str = "CURRENT";

/// Parses a file name into its kind and number (if any).
pub fn parse_file_name(name: &str) -> Option<(FileKind, u64)> {
    if name == CURRENT {
        return Some((FileKind::Current, 0));
    }
    if let Some(num) = name.strip_prefix("MANIFEST-") {
        return num.parse().ok().map(|n| (FileKind::Manifest, n));
    }
    if let Some(num) = name.strip_suffix(".sst") {
        return num.parse().ok().map(|n| (FileKind::Table, n));
    }
    if let Some(num) = name.strip_suffix(".log") {
        return num.parse().ok().map(|n| (FileKind::Wal, n));
    }
    if let Some(num) = name.strip_suffix(".tmp") {
        return num.parse().ok().map(|n| (FileKind::Temp, n));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_names() {
        assert_eq!(parse_file_name(&table_file(7)), Some((FileKind::Table, 7)));
        assert_eq!(parse_file_name(&wal_file(42)), Some((FileKind::Wal, 42)));
        assert_eq!(
            parse_file_name(&manifest_file(3)),
            Some((FileKind::Manifest, 3))
        );
        assert_eq!(parse_file_name(CURRENT), Some((FileKind::Current, 0)));
    }

    #[test]
    fn large_numbers_keep_working() {
        let n = 123_456_789;
        assert_eq!(parse_file_name(&table_file(n)), Some((FileKind::Table, n)));
    }

    #[test]
    fn junk_is_rejected() {
        assert_eq!(parse_file_name("README.md"), None);
        assert_eq!(parse_file_name("xyz.sst"), None);
        assert_eq!(parse_file_name("MANIFEST-"), None);
        assert_eq!(parse_file_name(""), None);
    }
}
