//! Resource grants: the per-compaction allowance a scheduler hands to an
//! executor.
//!
//! The scheduler side (the engine's `CompactionLimiter`) decides *how much*
//! pipeline width and device bandwidth one compaction may use; this module
//! defines the token it hands over. A [`ResourceGrant`] travels inside the
//! `CompactionRequest`, so every executor — and every stage thread an
//! executor spawns — can consult the same allowance:
//!
//! * [`ResourceGrant::stage_tokens`] caps how many parallel workers the
//!   widest pipeline stage may run (C-PPCP compute workers, S-PPCP read
//!   lanes);
//! * [`ResourceGrant::throttle`] paces device I/O against the granted
//!   bandwidth budget with a shared token bucket — clones of a grant (one
//!   per stage thread) draw from the same bucket.
//!
//! A default ([`ResourceGrant::unlimited`]) grant changes nothing: no
//! worker clamp, no pacing. Standalone `Db`s without a scheduler run on it.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Longest single pause [`ResourceGrant::throttle`] will take; bounds the
/// stall a misconfigured (tiny) bandwidth budget can inject into one call.
const MAX_THROTTLE_PAUSE: Duration = Duration::from_secs(1);

/// Shared token bucket pacing one compaction's device I/O. All clones of a
/// grant point at the same gate, so the budget covers the whole pipeline,
/// not each stage separately.
#[derive(Debug)]
struct RateGate {
    bytes_per_sec: u64,
    state: Mutex<GateState>,
}

#[derive(Debug)]
struct GateState {
    /// First throttle call; pacing is measured from here.
    started: Option<Instant>,
    /// Total bytes charged against the budget so far.
    consumed: u64,
}

/// One compaction's resource allowance, attached by the scheduler to the
/// `CompactionRequest` (cloned into every stage thread).
///
/// Grants are cheap to clone: clones share the bandwidth gate, so pacing
/// stays global across the pipeline's stages.
#[derive(Debug, Clone, Default)]
pub struct ResourceGrant {
    /// Scheduler slot this grant was issued to, if any.
    slot: Option<usize>,
    /// Stage-worker token count; `None` means unlimited.
    stage_tokens: Option<usize>,
    /// Bandwidth pacing gate; `None` means unpaced.
    gate: Option<Arc<RateGate>>,
}

impl ResourceGrant {
    /// A grant that imposes no limits — the default for compactions that
    /// run without a scheduler (standalone `Db`, unit tests, benches).
    pub fn unlimited() -> ResourceGrant {
        ResourceGrant::default()
    }

    /// A grant of `stage_tokens` parallel-stage workers and (optionally)
    /// `bytes_per_sec` of device bandwidth, issued to scheduler slot
    /// `slot`. Token counts are clamped to at least 1; a zero bandwidth
    /// budget is treated as unpaced rather than a full stop.
    pub fn new(slot: Option<usize>, stage_tokens: usize, bytes_per_sec: Option<u64>) -> Self {
        ResourceGrant {
            slot,
            stage_tokens: Some(stage_tokens.max(1)),
            gate: bytes_per_sec.filter(|&b| b > 0).map(|bytes_per_sec| {
                Arc::new(RateGate {
                    bytes_per_sec,
                    state: Mutex::new(GateState {
                        started: None,
                        consumed: 0,
                    }),
                })
            }),
        }
    }

    /// The scheduler slot the grant was issued to (`None` for anonymous or
    /// unlimited grants).
    pub fn slot(&self) -> Option<usize> {
        self.slot
    }

    /// How many parallel workers the widest pipeline stage may run.
    /// Unlimited grants report `usize::MAX`.
    pub fn stage_tokens(&self) -> usize {
        self.stage_tokens.unwrap_or(usize::MAX)
    }

    /// The granted bandwidth budget in bytes/second, if any.
    pub fn bytes_per_sec(&self) -> Option<u64> {
        self.gate.as_ref().map(|g| g.bytes_per_sec)
    }

    /// Clamps a desired per-stage worker count to this grant (at least 1 —
    /// an admitted compaction always makes progress).
    pub fn clamp_workers(&self, want: usize) -> usize {
        want.min(self.stage_tokens()).max(1)
    }

    /// Charges `bytes` of device I/O against the bandwidth budget and
    /// sleeps just long enough to keep the cumulative rate at or under it.
    /// No-op for unpaced grants. Individual pauses are capped at one
    /// second; the debt carries over to later calls.
    pub fn throttle(&self, bytes: u64) {
        let Some(gate) = &self.gate else {
            return;
        };
        let wait = {
            let mut st = gate.state.lock();
            let now = Instant::now();
            let started = *st.started.get_or_insert(now);
            st.consumed = st.consumed.saturating_add(bytes);
            let due =
                Duration::from_secs_f64(st.consumed as f64 / gate.bytes_per_sec as f64);
            due.checked_sub(now.duration_since(started))
        };
        if let Some(wait) = wait {
            std::thread::sleep(wait.min(MAX_THROTTLE_PAUSE));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_grant_imposes_nothing() {
        let g = ResourceGrant::unlimited();
        assert_eq!(g.stage_tokens(), usize::MAX);
        assert_eq!(g.bytes_per_sec(), None);
        assert_eq!(g.clamp_workers(8), 8);
        assert_eq!(g.slot(), None);
        let t0 = Instant::now();
        g.throttle(1 << 30);
        assert!(t0.elapsed() < Duration::from_millis(50), "no pacing");
    }

    #[test]
    fn tokens_clamp_workers_but_never_to_zero() {
        let g = ResourceGrant::new(Some(3), 2, None);
        assert_eq!(g.slot(), Some(3));
        assert_eq!(g.stage_tokens(), 2);
        assert_eq!(g.clamp_workers(8), 2);
        assert_eq!(g.clamp_workers(1), 1);
        let zero = ResourceGrant::new(None, 0, None);
        assert_eq!(zero.stage_tokens(), 1, "zero tokens rounds up to one");
    }

    #[test]
    fn zero_bandwidth_means_unpaced() {
        let g = ResourceGrant::new(None, 4, Some(0));
        assert_eq!(g.bytes_per_sec(), None);
    }

    #[test]
    fn throttle_paces_to_the_budget() {
        // 10 MiB/s budget, charge 1 MiB: the second call must wait until
        // ~100ms have elapsed since the first.
        let g = ResourceGrant::new(None, 4, Some(10 << 20));
        let t0 = Instant::now();
        g.throttle(512 << 10);
        g.throttle(512 << 10);
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_millis(60),
            "expected pacing, finished in {elapsed:?}"
        );
    }

    #[test]
    fn clones_share_one_bucket() {
        let g = ResourceGrant::new(None, 4, Some(10 << 20));
        let c = g.clone();
        let t0 = Instant::now();
        g.throttle(512 << 10);
        c.throttle(512 << 10); // must see the first call's consumption
        assert!(t0.elapsed() >= Duration::from_millis(60));
    }
}
