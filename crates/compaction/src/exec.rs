//! Compaction interface shared by every executor.
//!
//! The engine delegates the actual merge work to a [`CompactionExec`]. The
//! built-in [`SimpleMergeExec`] is the entry-at-a-time reference
//! implementation; the `pcp-core` crate provides the paper's block-level
//! SCP/PCP/C-PPCP/S-PPCP executors behind the same trait, and every
//! executor must produce **identical output tables** for the same input —
//! an invariant the integration tests enforce.
//!
//! [`VersionKeepFilter`] encodes the LSM version-visibility rules that
//! decide which merged entries survive (step S4's semantic half).

use crate::filename::table_file;
use crate::meta::FileMetadata;
use crate::sched::ResourceGrant;
use pcp_sstable::key::{parse_internal_key, user_key, SequenceNumber, ValueType};
use pcp_sstable::{
    KvIter, MergingIter, Result as TableResult, TableBuilder, TableBuilderOptions,
    TableReader,
};
use pcp_storage::EnvRef;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

/// Decides, entry by entry in internal-key order, whether a merged entry is
/// carried into the compaction output (LevelDB's drop logic):
///
/// * only the newest version at or below `smallest_snapshot` is kept per
///   user key — older ones are invisible to every live reader;
/// * tombstones are dropped once they reach the bottom level (no older
///   level can still hold a shadowed value).
#[derive(Debug)]
pub struct VersionKeepFilter {
    smallest_snapshot: SequenceNumber,
    bottom_level: bool,
    current_user_key: Vec<u8>,
    has_current_user_key: bool,
    last_sequence_for_key: SequenceNumber,
}

impl VersionKeepFilter {
    /// `smallest_snapshot` is the lowest sequence any live reader can see;
    /// `bottom_level` enables tombstone garbage collection.
    pub fn new(smallest_snapshot: SequenceNumber, bottom_level: bool) -> Self {
        VersionKeepFilter {
            smallest_snapshot,
            bottom_level,
            current_user_key: Vec::new(),
            has_current_user_key: false,
            last_sequence_for_key: SequenceNumber::MAX,
        }
    }

    /// Returns true if the entry with internal key `ikey` must be kept.
    /// Must be fed entries in [`pcp_sstable::key::internal_key_cmp`] order.
    pub fn keep(&mut self, ikey: &[u8]) -> bool {
        let parsed = parse_internal_key(ikey).expect("well-formed internal key");
        if !self.has_current_user_key || self.current_user_key != parsed.user_key {
            self.current_user_key.clear();
            self.current_user_key.extend_from_slice(parsed.user_key);
            self.has_current_user_key = true;
            self.last_sequence_for_key = SequenceNumber::MAX;
        }
        let keep = if self.last_sequence_for_key <= self.smallest_snapshot {
            // A newer entry for this user key is already ≤ the snapshot:
            // this one can never be observed.
            false
        } else {
            !(parsed.value_type == ValueType::Deletion
                && parsed.sequence <= self.smallest_snapshot
                && self.bottom_level)
        };
        self.last_sequence_for_key = parsed.sequence;
        keep
    }
}

/// Everything an executor needs to run one compaction.
pub struct CompactionRequest {
    /// Filesystem for output tables.
    pub env: EnvRef,
    /// Open readers for the upper component C_i, in version order.
    pub upper: Vec<Arc<TableReader>>,
    /// Open readers for the lower component C_{i+1}, in key order.
    pub lower: Vec<Arc<TableReader>>,
    /// Level the outputs land in.
    pub output_level: usize,
    /// True when `output_level` is the lowest non-empty level (tombstone GC).
    pub bottom_level: bool,
    /// Lowest sequence visible to any live snapshot.
    pub smallest_snapshot: SequenceNumber,
    /// Shared file-number allocator.
    pub file_numbers: Arc<AtomicU64>,
    /// Table format options for outputs.
    pub table_opts: TableBuilderOptions,
    /// Output tables rotate at this size (paper: 2 MB SSTables).
    pub max_output_bytes: u64,
    /// The scheduler's resource allowance for this compaction: stage-worker
    /// tokens and device-bandwidth pacing. [`ResourceGrant::unlimited`]
    /// when no scheduler is involved.
    pub grant: ResourceGrant,
}

impl CompactionRequest {
    /// Total input bytes (for bandwidth accounting).
    pub fn input_bytes(&self) -> u64 {
        self.upper
            .iter()
            .chain(self.lower.iter())
            .map(|t| t.stats().file_size)
            .sum()
    }

    /// Allocates the next output file number.
    pub fn next_file_number(&self) -> u64 {
        self.file_numbers.fetch_add(1, AtomicOrdering::SeqCst)
    }
}

/// A compaction algorithm.
pub trait CompactionExec: Send + Sync {
    /// Executor name for logs and reports.
    fn name(&self) -> &'static str;

    /// Merges the request's inputs into new tables at the output level and
    /// returns their metadata (in key order).
    fn compact(&self, req: &CompactionRequest) -> TableResult<Vec<Arc<FileMetadata>>>;

    /// Registers any executor-owned series (occupancy gauges, shape-choice
    /// counters) in `registry`. Stateless executors have nothing to
    /// publish, so the default is a no-op. Call this once per executor
    /// instance, not once per database sharing it — the engine-level
    /// `register_metrics` entry points take care of that.
    fn register_metrics(&self, _registry: &pcp_obs::Registry) {}
}

/// Shared output-side helper: writes filtered merged entries into
/// size-rotated tables. Used by the reference executor here and by the
/// sequential baseline in `pcp-core`.
pub struct OutputWriter<'req> {
    req: &'req CompactionRequest,
    builder: Option<(u64, TableBuilder)>, // (file number, builder)
    smallest: Vec<u8>,
    last_user_key: Vec<u8>,
    outputs: Vec<Arc<FileMetadata>>,
    /// Numbers of outputs whose finish failed, pending abort cleanup.
    aborted_numbers: Vec<u64>,
}

impl<'req> OutputWriter<'req> {
    /// Creates a writer for `req`'s output level.
    pub fn new(req: &'req CompactionRequest) -> Self {
        OutputWriter {
            req,
            builder: None,
            smallest: Vec::new(),
            last_user_key: Vec::new(),
            outputs: Vec::new(),
            aborted_numbers: Vec::new(),
        }
    }

    /// Appends one surviving entry (in internal-key order).
    pub fn add(&mut self, ikey: &[u8], value: &[u8]) -> TableResult<()> {
        // Rotate between user keys only: splitting one user key's versions
        // across two tables would break the level's disjointness invariant.
        let should_rotate = self
            .builder
            .as_ref()
            .is_some_and(|(_, b)| b.estimated_size() >= self.req.max_output_bytes)
            && user_key(ikey) != self.last_user_key.as_slice();
        if should_rotate {
            self.finish_current()?;
        }
        if self.builder.is_none() {
            let number = self.req.next_file_number();
            let file = self.req.env.create(&table_file(number))?;
            self.builder = Some((
                number,
                TableBuilder::new(file, self.req.table_opts.clone()),
            ));
            self.smallest = ikey.to_vec();
        }
        let (_, b) = self.builder.as_mut().expect("builder exists");
        b.add(ikey, value)?;
        self.last_user_key.clear();
        self.last_user_key.extend_from_slice(user_key(ikey));
        Ok(())
    }

    fn finish_current(&mut self) -> TableResult<()> {
        if let Some((number, builder)) = self.builder.take() {
            let largest = builder.last_key().to_vec();
            let stats = match builder.finish() {
                Ok(stats) => stats,
                Err(e) => {
                    // The half-written table is already an orphan; remember
                    // it so abort() can sweep it.
                    self.aborted_numbers.push(number);
                    return Err(e);
                }
            };
            self.outputs.push(Arc::new(FileMetadata {
                number,
                size: stats.file_size,
                entries: stats.entries,
                smallest: std::mem::take(&mut self.smallest),
                largest,
            }));
        }
        Ok(())
    }

    /// Finishes the last table and returns the outputs in key order. On
    /// error the writer still owns every created file — call
    /// [`OutputWriter::abort`] to sweep them.
    pub fn finish(&mut self) -> TableResult<Vec<Arc<FileMetadata>>> {
        self.finish_current()?;
        Ok(std::mem::take(&mut self.outputs))
    }

    /// Deletes every output file this writer created, so a failed
    /// compaction leaves no orphans behind. Best-effort: files whose
    /// delete fails are left for the database's orphan scan. Returns how
    /// many files were deleted.
    pub fn abort(&mut self) -> usize {
        if let Some((number, builder)) = self.builder.take() {
            drop(builder); // close the file handle before unlinking
            self.aborted_numbers.push(number);
        }
        let numbers = self
            .aborted_numbers
            .drain(..)
            .chain(self.outputs.drain(..).map(|m| m.number));
        let mut deleted = 0;
        for number in numbers {
            if self.req.env.delete(&table_file(number)).is_ok() {
                deleted += 1;
            }
        }
        deleted
    }
}

/// Reference executor: single-threaded, entry-at-a-time merge through the
/// normal iterator machinery. Correct, simple, and the semantic baseline
/// every pipelined executor is tested against.
#[derive(Debug, Default, Clone, Copy)]
pub struct SimpleMergeExec;

impl CompactionExec for SimpleMergeExec {
    fn name(&self) -> &'static str {
        "simple-merge"
    }

    fn compact(&self, req: &CompactionRequest) -> TableResult<Vec<Arc<FileMetadata>>> {
        let children: Vec<Box<dyn KvIter>> = req
            .upper
            .iter()
            .chain(req.lower.iter())
            .map(|t| Box::new(t.iter()) as Box<dyn KvIter>)
            .collect();
        let mut merged = MergingIter::new(children, pcp_sstable::internal_key_cmp);
        let mut filter = VersionKeepFilter::new(req.smallest_snapshot, req.bottom_level);
        let mut out = OutputWriter::new(req);
        let result = {
            let mut run = || -> TableResult<Vec<Arc<FileMetadata>>> {
                merged.seek_to_first();
                while merged.valid() {
                    if filter.keep(merged.key()) {
                        out.add(merged.key(), merged.value())?;
                    }
                    merged.next();
                }
                out.finish()
            };
            run()
        };
        if result.is_err() {
            out.abort();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcp_sstable::key::{make_internal_key, MAX_SEQUENCE};
    use pcp_storage::{SimDevice, SimEnv};

    fn env() -> EnvRef {
        Arc::new(SimEnv::new(Arc::new(SimDevice::mem(128 << 20))))
    }

    fn build_table(
        env: &EnvRef,
        number: u64,
        entries: &[(&[u8], u64, ValueType, &[u8])],
    ) -> Arc<TableReader> {
        let f = env.create(&table_file(number)).unwrap();
        let mut b = TableBuilder::new(f, TableBuilderOptions::default());
        let mut sorted: Vec<(Vec<u8>, Vec<u8>)> = entries
            .iter()
            .map(|(k, seq, t, v)| (make_internal_key(k, *seq, *t), v.to_vec()))
            .collect();
        sorted.sort_by(|a, b| pcp_sstable::internal_key_cmp(&a.0, &b.0));
        for (ik, v) in sorted {
            b.add(&ik, &v).unwrap();
        }
        b.finish().unwrap();
        Arc::new(TableReader::open(env.open(&table_file(number)).unwrap()).unwrap())
    }

    fn run(
        env: EnvRef,
        upper: Vec<Arc<TableReader>>,
        lower: Vec<Arc<TableReader>>,
        smallest_snapshot: u64,
        bottom: bool,
    ) -> (Vec<Arc<FileMetadata>>, EnvRef) {
        let req = CompactionRequest {
            env: Arc::clone(&env),
            upper,
            lower,
            output_level: 1,
            bottom_level: bottom,
            smallest_snapshot,
            file_numbers: Arc::new(AtomicU64::new(100)),
            table_opts: TableBuilderOptions::default(),
            max_output_bytes: 2 << 20,
            grant: ResourceGrant::unlimited(),
        };
        let outputs = SimpleMergeExec.compact(&req).unwrap();
        (outputs, env)
    }

    fn read_all(env: &EnvRef, outputs: &[Arc<FileMetadata>]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut all = Vec::new();
        for meta in outputs {
            let t = Arc::new(
                TableReader::open(env.open(&table_file(meta.number)).unwrap()).unwrap(),
            );
            let mut it = t.iter();
            it.seek_to_first();
            while it.valid() {
                all.push((it.key().to_vec(), it.value().to_vec()));
                it.next();
            }
        }
        all
    }

    #[test]
    fn filter_keeps_only_newest_visible_version() {
        let mut f = VersionKeepFilter::new(100, false);
        // Internal-key order for user key "k": seq 50, 30, 10.
        assert!(f.keep(&make_internal_key(b"k", 50, ValueType::Value)));
        assert!(!f.keep(&make_internal_key(b"k", 30, ValueType::Value)));
        assert!(!f.keep(&make_internal_key(b"k", 10, ValueType::Value)));
        // New user key resets.
        assert!(f.keep(&make_internal_key(b"l", 5, ValueType::Value)));
    }

    #[test]
    fn filter_respects_snapshots() {
        // Snapshot at 20: version 50 is above it, so 30 (first ≤ 20... no,
        // 30 > 20 too) — both 50 and 30 stay visible to *some* reader
        // (latest read and snapshot-20 read respectively); 10 is shadowed
        // by 30 for every snapshot ≥ 20... wait: snapshot 20 sees seq ≤ 20,
        // i.e. version 10. So all three must be kept except those shadowed
        // by a newer version that is itself ≤ 20.
        let mut f = VersionKeepFilter::new(20, false);
        assert!(f.keep(&make_internal_key(b"k", 50, ValueType::Value)));
        assert!(f.keep(&make_internal_key(b"k", 30, ValueType::Value)));
        assert!(f.keep(&make_internal_key(b"k", 10, ValueType::Value)));
        assert!(
            !f.keep(&make_internal_key(b"k", 5, ValueType::Value)),
            "seq 5 shadowed by seq 10 ≤ snapshot"
        );
    }

    #[test]
    fn filter_gc_tombstones_only_at_bottom() {
        let mut bottom = VersionKeepFilter::new(MAX_SEQUENCE, true);
        assert!(!bottom.keep(&make_internal_key(b"k", 9, ValueType::Deletion)));
        let mut mid = VersionKeepFilter::new(MAX_SEQUENCE, false);
        assert!(mid.keep(&make_internal_key(b"k", 9, ValueType::Deletion)));
    }

    #[test]
    fn merge_dedups_across_components() {
        let env = env();
        let upper = build_table(
            &env,
            1,
            &[
                (b"a", 10, ValueType::Value, b"a-new"),
                (b"c", 11, ValueType::Value, b"c-new"),
            ],
        );
        let lower = build_table(
            &env,
            2,
            &[
                (b"a", 2, ValueType::Value, b"a-old"),
                (b"b", 3, ValueType::Value, b"b-old"),
            ],
        );
        let (outputs, env) = run(env, vec![upper], vec![lower], MAX_SEQUENCE, true);
        let all = read_all(&env, &outputs);
        let got: Vec<(Vec<u8>, Vec<u8>)> = all
            .iter()
            .map(|(ik, v)| (user_key(ik).to_vec(), v.clone()))
            .collect();
        assert_eq!(
            got,
            vec![
                (b"a".to_vec(), b"a-new".to_vec()),
                (b"b".to_vec(), b"b-old".to_vec()),
                (b"c".to_vec(), b"c-new".to_vec()),
            ]
        );
    }

    #[test]
    fn tombstones_erase_values_at_bottom() {
        let env = env();
        let upper = build_table(&env, 1, &[(b"k", 10, ValueType::Deletion, b"")]);
        let lower = build_table(&env, 2, &[(b"k", 2, ValueType::Value, b"old")]);
        let (outputs, env) = run(env, vec![upper], vec![lower], MAX_SEQUENCE, true);
        let all = read_all(&env, &outputs);
        assert!(all.is_empty(), "tombstone and shadowed value both dropped");
        assert!(outputs.is_empty(), "no output file for empty result");
    }

    #[test]
    fn tombstones_survive_above_bottom() {
        let env = env();
        let upper = build_table(&env, 1, &[(b"k", 10, ValueType::Deletion, b"")]);
        let lower = build_table(&env, 2, &[(b"k", 2, ValueType::Value, b"old")]);
        let (outputs, env) = run(env, vec![upper], vec![lower], MAX_SEQUENCE, false);
        let all = read_all(&env, &outputs);
        assert_eq!(all.len(), 1, "tombstone kept to shadow deeper levels");
        let p = parse_internal_key(&all[0].0).unwrap();
        assert_eq!(p.value_type, ValueType::Deletion);
    }

    #[test]
    fn outputs_rotate_at_max_size_and_stay_disjoint() {
        let env = env();
        // Incompressible values so output size tracks entry count.
        let mut x = 0xDEADBEEFu64;
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..4000)
            .map(|i| {
                let v: Vec<u8> = (0..100)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x as u8
                    })
                    .collect();
                (format!("key{i:08}").into_bytes(), v)
            })
            .collect();
        let f = env.create(&table_file(1)).unwrap();
        let mut b = TableBuilder::new(f, TableBuilderOptions::default());
        for (i, (k, v)) in entries.iter().enumerate() {
            b.add(&make_internal_key(k, i as u64 + 1, ValueType::Value), v)
                .unwrap();
        }
        b.finish().unwrap();
        let upper = Arc::new(
            TableReader::open(env.open(&table_file(1)).unwrap()).unwrap(),
        );
        let req = CompactionRequest {
            env: Arc::clone(&env),
            upper: vec![upper],
            lower: vec![],
            output_level: 1,
            bottom_level: true,
            smallest_snapshot: MAX_SEQUENCE,
            file_numbers: Arc::new(AtomicU64::new(10)),
            table_opts: TableBuilderOptions::default(),
            max_output_bytes: 64 << 10, // small, to force several outputs
            grant: ResourceGrant::unlimited(),
        };
        let outputs = SimpleMergeExec.compact(&req).unwrap();
        assert!(outputs.len() > 2, "expected rotation, got {}", outputs.len());
        let total: u64 = outputs.iter().map(|f| f.entries).sum();
        assert_eq!(total, 4000);
        for w in outputs.windows(2) {
            assert!(
                user_key(&w[0].largest) < user_key(&w[1].smallest),
                "outputs must be disjoint"
            );
        }
    }
}
