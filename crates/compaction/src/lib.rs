//! # pcp-compaction
//!
//! The compaction interface shared by the LSM engine (`pcp-lsm`) and the
//! paper's pipelined executors (`pcp-core`). Extracting it into its own
//! crate breaks the dependency cycle that would otherwise stop the engine
//! from *defaulting* to a pipelined executor: `pcp-core` implements
//! [`CompactionExec`] against this crate, and `pcp-lsm` consumes both.
//!
//! Contents:
//!
//! * [`CompactionExec`] / [`CompactionRequest`] — the executor contract.
//!   Every executor must produce **identical output tables** for the same
//!   input; the integration tests enforce this byte-for-byte.
//! * [`SimpleMergeExec`] — the entry-at-a-time reference implementation.
//! * [`VersionKeepFilter`] — LSM version-visibility rules (step S4's
//!   semantic half).
//! * [`FileMetadata`] — immutable description of one SSTable.
//! * [`filename`] — on-disk naming conventions.
//! * [`sched`] / [`ResourceGrant`] — the resource allowance a scheduler
//!   attaches to each compaction (stage-worker tokens + device bandwidth),
//!   honored by the pipelined executors.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod filename;
pub mod sched;

mod exec;
mod meta;

pub use exec::{
    CompactionExec, CompactionRequest, OutputWriter, SimpleMergeExec, VersionKeepFilter,
};
pub use meta::FileMetadata;
pub use sched::ResourceGrant;
