//! SSTable metadata shared between the engine's version structure and the
//! compaction executors (which produce it for every output table).

use pcp_sstable::key::{user_key, InternalKey};

/// Immutable description of one SSTable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMetadata {
    /// File number (names the `.sst` file).
    pub number: u64,
    /// File size in bytes.
    pub size: u64,
    /// Entry count (from table stats).
    pub entries: u64,
    /// Smallest internal key in the table.
    pub smallest: InternalKey,
    /// Largest internal key in the table.
    pub largest: InternalKey,
}

impl FileMetadata {
    /// True if this table's user-key range intersects `[lo, hi]`
    /// (`None` bounds are unbounded).
    pub fn overlaps_user_range(&self, lo: Option<&[u8]>, hi: Option<&[u8]>) -> bool {
        let smallest_user = user_key(&self.smallest);
        let largest_user = user_key(&self.largest);
        if let Some(hi) = hi {
            if smallest_user > hi {
                return false;
            }
        }
        if let Some(lo) = lo {
            if largest_user < lo {
                return false;
            }
        }
        true
    }
}
