//! I/O-tracing device wrapper.
//!
//! [`TraceDevice`] records every request against the wrapped device —
//! direction, offset, length, and modeled service time — so experiments
//! can assert *what I/O actually happened* (e.g. "PCP issues one read per
//! sub-task per run", "compaction writes are sequential") rather than
//! inferring it from aggregate counters.

use crate::device::BlockDevice;
use crate::model::IoKind;
use crate::stats::DeviceStats;
use crate::DeviceRef;
use bytes::Bytes;
use parking_lot::Mutex;
use std::io;
use std::time::Instant;

/// One recorded request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    pub kind: IoKind,
    pub offset: u64,
    pub len: usize,
    /// Wall-clock service duration (includes queueing on the device lock).
    pub service_nanos: u64,
}

/// A [`BlockDevice`] decorator that records the request stream.
pub struct TraceDevice {
    inner: DeviceRef,
    trace: Mutex<Vec<TraceRecord>>,
}

impl std::fmt::Debug for TraceDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceDevice")
            .field("inner", &self.inner.name())
            .field("records", &self.trace.lock().len())
            .finish()
    }
}

impl TraceDevice {
    /// Wraps `inner`.
    pub fn new(inner: DeviceRef) -> TraceDevice {
        TraceDevice {
            inner,
            trace: Mutex::new(Vec::new()),
        }
    }

    /// Snapshot of the recorded requests, in completion order.
    pub fn trace(&self) -> Vec<TraceRecord> {
        self.trace.lock().clone()
    }

    /// Drops all recorded requests (e.g. after a setup phase).
    pub fn clear(&self) {
        self.trace.lock().clear();
    }

    /// Number of records matching `kind`.
    pub fn count(&self, kind: IoKind) -> usize {
        self.trace.lock().iter().filter(|r| r.kind == kind).count()
    }

    /// Mean request length for `kind`, in bytes (0 when none).
    pub fn mean_len(&self, kind: IoKind) -> f64 {
        let trace = self.trace.lock();
        let (n, total) = trace
            .iter()
            .filter(|r| r.kind == kind)
            .fold((0usize, 0usize), |(n, t), r| (n + 1, t + r.len));
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }

    /// Fraction of `kind` requests that continue exactly where the
    /// previous same-kind request ended (sequentiality metric).
    pub fn sequential_fraction(&self, kind: IoKind) -> f64 {
        let trace = self.trace.lock();
        let mut last_end: Option<u64> = None;
        let (mut n, mut seq) = (0usize, 0usize);
        for r in trace.iter().filter(|r| r.kind == kind) {
            if let Some(end) = last_end {
                n += 1;
                if r.offset == end {
                    seq += 1;
                }
            }
            last_end = Some(r.offset + r.len as u64);
        }
        if n == 0 {
            0.0
        } else {
            seq as f64 / n as f64
        }
    }
}

impl BlockDevice for TraceDevice {
    fn read_at(&self, offset: u64, len: usize) -> io::Result<Bytes> {
        let t0 = Instant::now();
        let out = self.inner.read_at(offset, len)?;
        self.trace.lock().push(TraceRecord {
            kind: IoKind::Read,
            offset,
            len,
            service_nanos: t0.elapsed().as_nanos() as u64,
        });
        Ok(out)
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        let t0 = Instant::now();
        self.inner.write_at(offset, data)?;
        self.trace.lock().push(TraceRecord {
            kind: IoKind::Write,
            offset,
            len: data.len(),
            service_nanos: t0.elapsed().as_nanos() as u64,
        });
        Ok(())
    }

    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }

    fn stats(&self) -> &DeviceStats {
        self.inner.stats()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn model_name(&self) -> &'static str {
        self.inner.model_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimDevice;
    use std::sync::Arc;

    fn traced() -> (Arc<TraceDevice>, DeviceRef) {
        let dev = Arc::new(TraceDevice::new(Arc::new(SimDevice::mem(1 << 20))));
        let as_device: DeviceRef = dev.clone();
        (dev, as_device)
    }

    #[test]
    fn records_reads_and_writes_in_order() {
        let (trace, dev) = traced();
        dev.write_at(0, b"hello").unwrap();
        dev.read_at(0, 5).unwrap();
        dev.write_at(100, b"x").unwrap();
        let t = trace.trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].kind, IoKind::Write);
        assert_eq!(t[0].len, 5);
        assert_eq!(t[1].kind, IoKind::Read);
        assert_eq!(t[2].offset, 100);
        assert_eq!(trace.count(IoKind::Write), 2);
        assert_eq!(trace.count(IoKind::Read), 1);
    }

    #[test]
    fn passthrough_preserves_data() {
        let (_, dev) = traced();
        dev.write_at(10, b"payload").unwrap();
        assert_eq!(&dev.read_at(10, 7).unwrap()[..], b"payload");
    }

    #[test]
    fn sequentiality_metric() {
        let (trace, dev) = traced();
        // Three back-to-back writes, then a jump.
        dev.write_at(0, &[0; 100]).unwrap();
        dev.write_at(100, &[0; 100]).unwrap();
        dev.write_at(200, &[0; 100]).unwrap();
        dev.write_at(10_000, &[0; 100]).unwrap();
        let f = trace.sequential_fraction(IoKind::Write);
        assert!((f - 2.0 / 3.0).abs() < 1e-9, "{f}");
        assert_eq!(trace.mean_len(IoKind::Write), 100.0);
    }

    #[test]
    fn clear_resets() {
        let (trace, dev) = traced();
        dev.write_at(0, b"a").unwrap();
        trace.clear();
        assert!(trace.trace().is_empty());
    }
}
