//! RAID0 striping over k devices.
//!
//! For S-PPCP the paper builds a RAID0 array with the Linux `md` driver so
//! that Step 1 and Step 7 of different sub-tasks land on different spindles.
//! [`Raid0`] reproduces that: a logical request is split at stripe-unit
//! boundaries, the per-device segments are serviced concurrently (scoped
//! threads — each segment sleeps on its own device's service lock), and the
//! logical request completes when the slowest segment does.

use crate::device::BlockDevice;
use crate::stats::DeviceStats;
use crate::DeviceRef;
use bytes::Bytes;
use std::io;
use std::time::Instant;

/// A RAID0 (striping, no redundancy) array of homogeneous devices.
pub struct Raid0 {
    name: String,
    devices: Vec<DeviceRef>,
    stripe: u64,
    stats: DeviceStats,
}

impl std::fmt::Debug for Raid0 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Raid0")
            .field("name", &self.name)
            .field("devices", &self.devices.len())
            .field("stripe", &self.stripe)
            .finish()
    }
}

/// One contiguous slice of a logical request mapped onto a member device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Segment {
    device: usize,
    dev_offset: u64,
    /// Offset of this segment within the logical request buffer.
    buf_offset: usize,
    len: usize,
}

impl Raid0 {
    /// Assembles an array. `stripe` is the stripe-unit size in bytes
    /// (the `md` chunk size; 64 KiB is a common default).
    ///
    /// # Panics
    /// Panics if `devices` is empty or `stripe` is zero.
    pub fn new(name: impl Into<String>, devices: Vec<DeviceRef>, stripe: u64) -> Self {
        assert!(!devices.is_empty(), "RAID0 needs at least one device");
        assert!(stripe > 0, "stripe unit must be positive");
        Raid0 {
            name: name.into(),
            devices,
            stripe,
            stats: DeviceStats::new(),
        }
    }

    /// Number of member devices.
    pub fn width(&self) -> usize {
        self.devices.len()
    }

    /// Member devices (for per-spindle stats).
    pub fn members(&self) -> &[DeviceRef] {
        &self.devices
    }

    /// Maps `[offset, offset+len)` in the logical address space onto
    /// per-device segments, in logical order.
    fn map(&self, offset: u64, len: usize) -> Vec<Segment> {
        let k = self.devices.len() as u64;
        let mut segments = Vec::new();
        let mut cur = offset;
        let end = offset + len as u64;
        while cur < end {
            let stripe_idx = cur / self.stripe;
            let within = cur % self.stripe;
            let n = ((self.stripe - within).min(end - cur)) as usize;
            segments.push(Segment {
                device: (stripe_idx % k) as usize,
                dev_offset: (stripe_idx / k) * self.stripe + within,
                buf_offset: (cur - offset) as usize,
                len: n,
            });
            cur += n as u64;
        }
        segments
    }

    /// Per-device I/O plan: for one contiguous logical range, each
    /// device's chunks form a single dense span (RAID0's defining
    /// property), so the array issues **one request per member** and
    /// scatters/gathers the buffer at chunk granularity — the block
    /// layer's request merging, without which concurrent lanes (S-PPCP)
    /// would interleave stripe-sized requests into head-thrashing on
    /// seek-bound members.
    fn device_plan(&self, segments: &[Segment]) -> Vec<(usize, u64, usize, Vec<Segment>)> {
        let mut plan: Vec<(usize, u64, usize, Vec<Segment>)> = Vec::new();
        for d in 0..self.devices.len() {
            let chunks: Vec<Segment> = segments
                .iter()
                .filter(|s| s.device == d)
                .copied()
                .collect();
            if chunks.is_empty() {
                continue;
            }
            let start = chunks.iter().map(|c| c.dev_offset).min().unwrap();
            let end = chunks
                .iter()
                .map(|c| c.dev_offset + c.len as u64)
                .max()
                .unwrap();
            debug_assert_eq!(
                (end - start) as usize,
                chunks.iter().map(|c| c.len).sum::<usize>(),
                "device span must be dense"
            );
            plan.push((d, start, (end - start) as usize, chunks));
        }
        plan
    }

    /// Runs `f` once per member device touched by the plan, concurrently
    /// (each member sleeps on its own service lock).
    fn for_each_device<F>(
        &self,
        plan: &[(usize, u64, usize, Vec<Segment>)],
        f: F,
    ) -> io::Result<()>
    where
        F: Fn(usize, &(usize, u64, usize, Vec<Segment>)) -> io::Result<()> + Sync + Send,
    {
        if plan.len() <= 1 {
            for (i, entry) in plan.iter().enumerate() {
                f(i, entry)?;
            }
            return Ok(());
        }
        let mut result: io::Result<()> = Ok(());
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .iter()
                .enumerate()
                .map(|(i, entry)| scope.spawn(move || f(i, entry)))
                .collect();
            for h in handles {
                let r = h.join().expect("raid worker panicked");
                if r.is_err() && result.is_ok() {
                    result = r;
                }
            }
        });
        result
    }
}


impl BlockDevice for Raid0 {
    fn read_at(&self, offset: u64, len: usize) -> io::Result<Bytes> {
        let segments = self.map(offset, len);
        let plan = self.device_plan(&segments);
        let parts: Vec<parking_lot::Mutex<Option<Bytes>>> =
            plan.iter().map(|_| parking_lot::Mutex::new(None)).collect();
        let t0 = Instant::now();
        self.for_each_device(&plan, |i, (d, start, span_len, _)| {
            let data = self.devices[*d].read_at(*start, *span_len)?;
            *parts[i].lock() = Some(data);
            Ok(())
        })?;
        let mut buf = vec![0u8; len];
        for ((_, start, _, chunks), part) in plan.iter().zip(&parts) {
            let span = part.lock().take().expect("span read completed");
            for c in chunks {
                let s0 = (c.dev_offset - start) as usize;
                buf[c.buf_offset..c.buf_offset + c.len]
                    .copy_from_slice(&span[s0..s0 + c.len]);
            }
        }
        self.stats
            .record_read(len as u64, t0.elapsed(), std::time::Duration::ZERO);
        Ok(Bytes::from(buf))
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        let segments = self.map(offset, data.len());
        let plan = self.device_plan(&segments);
        // Gather each member's chunks into one dense span buffer.
        let spans: Vec<Vec<u8>> = plan
            .iter()
            .map(|(_, start, span_len, chunks)| {
                let mut span = vec![0u8; *span_len];
                for c in chunks {
                    let s0 = (c.dev_offset - start) as usize;
                    span[s0..s0 + c.len]
                        .copy_from_slice(&data[c.buf_offset..c.buf_offset + c.len]);
                }
                span
            })
            .collect();
        let t0 = Instant::now();
        self.for_each_device(&plan, |i, (d, start, _, _)| {
            self.devices[*d].write_at(*start, &spans[i])
        })?;
        self.stats
            .record_write(data.len() as u64, t0.elapsed(), std::time::Duration::ZERO);
        Ok(())
    }

    fn capacity(&self) -> u64 {
        let min = self
            .devices
            .iter()
            .map(|d| d.capacity())
            .min()
            .unwrap_or(0);
        min * self.devices.len() as u64
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn model_name(&self) -> &'static str {
        "raid0"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimDevice;
    use crate::model::HddModel;
    use std::sync::Arc;

    fn mem_array(k: usize, stripe: u64) -> Raid0 {
        let devices: Vec<DeviceRef> = (0..k)
            .map(|_| Arc::new(SimDevice::mem(1 << 24)) as DeviceRef)
            .collect();
        Raid0::new("raid0", devices, stripe)
    }

    #[test]
    fn roundtrip_across_stripes() {
        let raid = mem_array(4, 4096);
        let data: Vec<u8> = (0..40_000).map(|i| (i % 253) as u8).collect();
        raid.write_at(1000, &data).unwrap();
        let got = raid.read_at(1000, data.len()).unwrap();
        assert_eq!(&got[..], &data[..]);
    }

    #[test]
    fn mapping_distributes_round_robin() {
        let raid = mem_array(3, 1024);
        let segs = raid.map(0, 4096);
        assert_eq!(segs.len(), 4);
        assert_eq!(
            segs.iter().map(|s| s.device).collect::<Vec<_>>(),
            vec![0, 1, 2, 0]
        );
        assert_eq!(segs[3].dev_offset, 1024, "second stripe row on device 0");
    }

    #[test]
    fn mapping_handles_unaligned_requests() {
        let raid = mem_array(2, 1024);
        let segs = raid.map(1500, 1000);
        // [1500,2048) on dev1@476.. wait — stripe 1 maps to device 1.
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].device, 1);
        assert_eq!(segs[0].len, 548);
        assert_eq!(segs[1].device, 0);
        assert_eq!(segs[1].dev_offset, 1024);
        assert_eq!(segs[1].len, 452);
        let total: usize = segs.iter().map(|s| s.len).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn capacity_is_min_times_width() {
        let raid = mem_array(4, 4096);
        assert_eq!(raid.capacity(), (1u64 << 24) * 4);
    }

    #[test]
    fn parallel_stripes_overlap_their_sleeps() {
        // Two HDD-modeled members at real time: a 2-stripe read should take
        // about one stripe's time, not two.
        let mk = |n: &str| {
            Arc::new(SimDevice::new(
                n,
                HddModel {
                    min_seek: std::time::Duration::from_millis(5),
                    ..HddModel::default()
                },
                1 << 30,
                1.0,
            )) as DeviceRef
        };
        let raid = Raid0::new("r", vec![mk("a"), mk("b")], 512 * 1024);
        // 4 MiB = 4 stripes per member: per-member busy time (~10 ms)
        // dwarfs thread-spawn overhead, so overlap must show. Wall-clock
        // timing on a noisy host: accept the best of three attempts.
        let mut best_ratio = f64::INFINITY;
        for attempt in 0..3 {
            let before: std::time::Duration =
                raid.members().iter().map(|d| d.stats().busy()).sum();
            let t0 = Instant::now();
            raid.read_at((attempt as u64) * (8 << 20), 4 << 20).unwrap();
            let wall = t0.elapsed();
            let serial: std::time::Duration = raid
                .members()
                .iter()
                .map(|d| d.stats().busy())
                .sum::<std::time::Duration>()
                - before;
            best_ratio = best_ratio.min(wall.as_secs_f64() / serial.as_secs_f64());
        }
        // Without overlap, wall ≥ serial (ratio ≥ 1.0 plus sleep
        // overshoot); any ratio below 1 proves the stripes overlapped.
        // 0.95 leaves margin for vCPU-steal-inflated sleeps.
        assert!(
            best_ratio < 0.95,
            "parallel stripes never overlapped: best wall/serial = {best_ratio:.2}"
        );
    }
}
