//! Simulated filesystem over a [`BlockDevice`](crate::device::BlockDevice).
//!
//! Files are stored as chains of extents placed by the
//! [`ExtentAllocator`]; continual SSTable creation/deletion fragments the
//! device over time, giving the HDD model realistic seek behaviour during
//! compaction (paper §IV-B). There is no page cache — every read hits the
//! device, matching the paper's use of direct I/O for profiling.
//!
//! I/O granularity: [`WritableFile::append`] only buffers;
//! [`WritableFile::flush`] turns the buffered bytes into device writes. The
//! compaction write stage flushes once per sub-task, so one flush models one
//! step-S7 I/O.

use crate::alloc::{Extent, ExtentAllocator};
use crate::env::{Env, RandomReadFile, ReadClass, WritableFile};
use crate::DeviceRef;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::sync::Arc;

/// Granule files grow by. One memtable flush (≈2 MB SSTable) spans several
/// extents, so co-evolving files interleave on the device — the dynamic
/// allocation the paper blames for compaction-read seeks.
const SEGMENT: u64 = 512 * 1024;

#[derive(Debug, Clone, Default)]
struct FileMeta {
    extents: Vec<Extent>,
    len: u64,
}

impl FileMeta {
    /// Total capacity of the extent chain.
    fn extent_capacity(&self) -> u64 {
        self.extents.iter().map(|e| e.len).sum()
    }

    /// Device ranges overlapping file range `[offset, offset+len)`, as
    /// (device_offset, byte_count) pairs in file order.
    fn map_range(&self, offset: u64, len: u64) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        let mut file_pos = 0u64;
        let end = offset + len;
        for e in &self.extents {
            let seg_start = file_pos;
            let seg_end = file_pos + e.len;
            if seg_end > offset && seg_start < end {
                let lo = offset.max(seg_start);
                let hi = end.min(seg_end);
                out.push((e.offset + (lo - seg_start), (hi - lo) as usize));
            }
            file_pos = seg_end;
            if file_pos >= end {
                break;
            }
        }
        out
    }
}

#[derive(Debug)]
struct State {
    files: HashMap<String, Arc<FileMeta>>,
    alloc: ExtentAllocator,
}

#[derive(Debug)]
struct Inner {
    device: DeviceRef,
    state: Mutex<State>,
}

impl Inner {
    fn free_meta(state: &mut State, meta: &FileMeta) {
        for e in &meta.extents {
            state.alloc.free(*e);
        }
    }
}

/// A simulated flat filesystem backed by one block device.
#[derive(Debug, Clone)]
pub struct SimEnv {
    inner: Arc<Inner>,
}

impl SimEnv {
    /// Creates an empty filesystem over `device`.
    pub fn new(device: DeviceRef) -> Self {
        let capacity = device.capacity();
        SimEnv {
            inner: Arc::new(Inner {
                device,
                state: Mutex::new(State {
                    files: HashMap::new(),
                    alloc: ExtentAllocator::new(capacity),
                }),
            }),
        }
    }

    /// The underlying device (for stats).
    pub fn device(&self) -> &DeviceRef {
        &self.inner.device
    }

    /// Bytes currently allocated to files (including growth slack).
    pub fn allocated(&self) -> u64 {
        self.inner.state.lock().alloc.allocated()
    }

    /// Number of free-list fragments (device fragmentation metric).
    pub fn free_fragments(&self) -> usize {
        self.inner.state.lock().alloc.free_fragments()
    }

    fn not_found(name: &str) -> io::Error {
        io::Error::new(io::ErrorKind::NotFound, format!("no such file: {name}"))
    }
}

impl Env for SimEnv {
    fn create(&self, name: &str) -> io::Result<Box<dyn WritableFile>> {
        let mut st = self.inner.state.lock();
        if let Some(old) = st.files.remove(name) {
            Inner::free_meta(&mut st, &old);
        }
        st.files
            .insert(name.to_string(), Arc::new(FileMeta::default()));
        drop(st);
        Ok(Box::new(SimWritable {
            inner: Arc::clone(&self.inner),
            name: name.to_string(),
            buffer: Vec::new(),
            flushed: 0,
        }))
    }

    fn open(&self, name: &str) -> io::Result<Arc<dyn RandomReadFile>> {
        let st = self.inner.state.lock();
        let meta = st.files.get(name).ok_or_else(|| Self::not_found(name))?;
        Ok(Arc::new(SimReadable {
            device: Arc::clone(&self.inner.device),
            meta: Arc::clone(meta),
        }))
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        let mut st = self.inner.state.lock();
        let meta = st
            .files
            .remove(name)
            .ok_or_else(|| Self::not_found(name))?;
        Inner::free_meta(&mut st, &meta);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut st = self.inner.state.lock();
        let meta = st
            .files
            .remove(from)
            .ok_or_else(|| Self::not_found(from))?;
        if let Some(old) = st.files.insert(to.to_string(), meta) {
            Inner::free_meta(&mut st, &old);
        }
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.state.lock().files.contains_key(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self.inner.state.lock().files.keys().cloned().collect())
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        let st = self.inner.state.lock();
        st.files
            .get(name)
            .map(|m| m.len)
            .ok_or_else(|| Self::not_found(name))
    }
}

struct SimReadable {
    device: DeviceRef,
    meta: Arc<FileMeta>,
}

impl RandomReadFile for SimReadable {
    fn read_at(&self, offset: u64, len: usize) -> io::Result<Bytes> {
        if offset >= self.meta.len {
            return Ok(Bytes::new());
        }
        let len = len.min((self.meta.len - offset) as usize);
        let ranges = self.meta.map_range(offset, len as u64);
        if ranges.len() == 1 {
            return self.device.read_at(ranges[0].0, ranges[0].1);
        }
        let mut out = Vec::with_capacity(len);
        for (dev_off, n) in ranges {
            out.extend_from_slice(&self.device.read_at(dev_off, n)?);
        }
        Ok(Bytes::from(out))
    }

    fn read_at_class(&self, offset: u64, len: usize, class: ReadClass) -> io::Result<Bytes> {
        let data = self.read_at(offset, len)?;
        if class == ReadClass::Readahead {
            self.device.stats().record_readahead(data.len() as u64);
        }
        Ok(data)
    }

    fn len(&self) -> u64 {
        self.meta.len
    }
}

struct SimWritable {
    inner: Arc<Inner>,
    name: String,
    buffer: Vec<u8>,
    /// Bytes already on the device.
    flushed: u64,
}

impl WritableFile for SimWritable {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.buffer.extend_from_slice(data);
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        let data = std::mem::take(&mut self.buffer);
        let write_end = self.flushed + data.len() as u64;

        // Grow the extent chain (copy-on-write against concurrent readers).
        let mut st = self.inner.state.lock();
        let meta = st
            .files
            .get(&self.name)
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("file deleted while open for write: {}", self.name),
                )
            })?
            .as_ref()
            .clone();
        let mut meta = meta;
        if meta.extent_capacity() < write_end {
            let shortfall = write_end - meta.extent_capacity();
            let want = shortfall.div_ceil(SEGMENT) * SEGMENT;
            // Prefer one contiguous extent; fall back to SEGMENT pieces
            // when fragmentation prevents it.
            match st.alloc.allocate(want) {
                Ok(e) => meta.extents.push(e),
                Err(_) => {
                    let mut remaining = want;
                    while remaining > 0 {
                        let e = st.alloc.allocate(SEGMENT.min(remaining)).map_err(|e| {
                            io::Error::new(io::ErrorKind::StorageFull, e.to_string())
                        })?;
                        remaining = remaining.saturating_sub(e.len);
                        meta.extents.push(e);
                    }
                }
            }
        }
        let ranges = meta.map_range(self.flushed, data.len() as u64);
        meta.len = write_end;
        st.files.insert(self.name.clone(), Arc::new(meta));
        // Release the namespace lock before sleeping in the device so other
        // files' I/O can proceed; our extents are already reserved.
        drop(st);

        let mut written = 0usize;
        for (dev_off, n) in ranges {
            self.inner.device.write_at(dev_off, &data[written..written + n])?;
            written += n;
        }
        debug_assert_eq!(written, data.len());
        self.flushed = write_end;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        // The simulated device has no volatile OS cache; flush is durable.
        self.flush()
    }

    fn len(&self) -> u64 {
        self.flushed + self.buffer.len() as u64
    }
}

impl Drop for SimWritable {
    fn drop(&mut self) {
        // Best-effort: don't lose buffered data on handle drop.
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimDevice;
    use crate::env::{read_string_file, write_string_file};

    fn env() -> SimEnv {
        SimEnv::new(Arc::new(SimDevice::mem(64 << 20)))
    }

    #[test]
    fn create_write_read_roundtrip() {
        let env = env();
        let mut f = env.create("a.sst").unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync().unwrap();
        drop(f);
        let r = env.open("a.sst").unwrap();
        assert_eq!(r.len(), 11);
        assert_eq!(&r.read_at(0, 11).unwrap()[..], b"hello world");
        assert_eq!(&r.read_at(6, 5).unwrap()[..], b"world");
    }

    #[test]
    fn read_past_eof_is_short() {
        let env = env();
        let mut f = env.create("a").unwrap();
        f.append(b"abc").unwrap();
        f.sync().unwrap();
        drop(f);
        let r = env.open("a").unwrap();
        assert_eq!(&r.read_at(1, 100).unwrap()[..], b"bc");
        assert_eq!(r.read_at(3, 10).unwrap().len(), 0);
        assert_eq!(r.read_at(100, 10).unwrap().len(), 0);
    }

    #[test]
    fn large_file_spans_extents() {
        let env = env();
        let data: Vec<u8> = (0..(3 * SEGMENT as usize + 12345))
            .map(|i| (i % 251) as u8)
            .collect();
        let mut f = env.create("big").unwrap();
        // Append in odd-sized pieces, flushing as we go.
        for chunk in data.chunks(100_000) {
            f.append(chunk).unwrap();
            f.flush().unwrap();
        }
        f.sync().unwrap();
        drop(f);
        let r = env.open("big").unwrap();
        assert_eq!(r.len(), data.len() as u64);
        let got = r.read_at(0, data.len()).unwrap();
        assert_eq!(&got[..], &data[..]);
        // Cross-extent read.
        let off = SEGMENT as usize - 10;
        let got = r.read_at(off as u64, 100).unwrap();
        assert_eq!(&got[..], &data[off..off + 100]);
    }

    #[test]
    fn delete_frees_space() {
        let env = env();
        let mut f = env.create("x").unwrap();
        f.append(&vec![0u8; 2 * SEGMENT as usize]).unwrap();
        f.sync().unwrap();
        drop(f);
        assert!(env.allocated() >= 2 * SEGMENT);
        env.delete("x").unwrap();
        assert_eq!(env.allocated(), 0);
        assert!(!env.exists("x"));
        assert!(env.open("x").is_err());
    }

    #[test]
    fn rename_replaces_destination() {
        let env = env();
        write_string_file(&env, "CURRENT", "old").unwrap();
        write_string_file(&env, "CURRENT.new", "new").unwrap();
        env.rename("CURRENT.new", "CURRENT").unwrap();
        assert_eq!(read_string_file(&env, "CURRENT").unwrap(), "new");
        assert!(!env.exists("CURRENT.new"));
    }

    #[test]
    fn create_truncates_existing() {
        let env = env();
        write_string_file(&env, "f", "long contents here").unwrap();
        write_string_file(&env, "f", "x").unwrap();
        assert_eq!(read_string_file(&env, "f").unwrap(), "x");
        assert_eq!(env.size("f").unwrap(), 1);
    }

    #[test]
    fn list_reports_all_files() {
        let env = env();
        for n in ["a", "b", "c"] {
            write_string_file(&env, n, n).unwrap();
        }
        let mut names = env.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn readers_see_snapshot_at_open() {
        let env = env();
        let mut f = env.create("grow").unwrap();
        f.append(b"first").unwrap();
        f.flush().unwrap();
        let r = env.open("grow").unwrap();
        f.append(b"second").unwrap();
        f.flush().unwrap();
        // Snapshot semantics: the reader still sees only the first flush.
        assert_eq!(r.len(), 5);
        // A fresh open sees everything.
        let r2 = env.open("grow").unwrap();
        assert_eq!(r2.len(), 11);
    }

    #[test]
    fn storage_full_is_reported() {
        let dev = Arc::new(SimDevice::mem(2 * SEGMENT));
        let env = SimEnv::new(dev);
        let mut f = env.create("fill").unwrap();
        f.append(&vec![1u8; 2 * SEGMENT as usize]).unwrap();
        f.sync().unwrap();
        let mut g = env.create("more").unwrap();
        g.append(b"x").unwrap();
        let err = g.sync().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    }

    #[test]
    fn churn_then_full_reuse() {
        let env = SimEnv::new(Arc::new(SimDevice::mem(8 << 20)));
        for round in 0..20 {
            let name = format!("t{}", round % 3);
            let mut f = env.create(&name).unwrap();
            f.append(&vec![round as u8; 700_000]).unwrap();
            f.sync().unwrap();
        }
        for n in env.list().unwrap() {
            env.delete(&n).unwrap();
        }
        assert_eq!(env.allocated(), 0);
        assert_eq!(env.free_fragments(), 1);
    }
}
