//! Bounded retry with exponential backoff for transient I/O errors.
//!
//! The compaction driver, WAL, and MANIFEST writers all face the same
//! question on an `io::Error`: is this worth retrying? The answer here is
//! the RocksDB one — retry only errors the kernel itself reports as
//! retryable, a bounded number of times with growing sleeps, and hand
//! everything else (or the last failure) to the caller to latch as a
//! background error.

use std::io;
use std::time::Duration;

/// How many times to attempt an op and how long to wait between attempts.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles each retry after that.
    pub base_backoff: Duration,
    /// Ceiling on any single sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries — for contexts that must fail fast.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }
}

/// True for errors where retrying the same op can plausibly succeed.
///
/// `Interrupted` is the classic case (EINTR, and what
/// [`crate::FaultEnv`] uses for injected transient faults);
/// `WouldBlock`/`TimedOut` cover overloaded devices.
pub fn is_transient(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Runs `op` under `policy`: transient failures are retried with
/// exponential backoff, the first non-transient failure (or the last
/// transient one once attempts are exhausted) is returned.
pub fn with_retry<T, F>(policy: &RetryPolicy, mut op: F) -> io::Result<T>
where
    F: FnMut() -> io::Result<T>,
{
    let mut backoff = policy.base_backoff;
    let mut attempt = 0;
    loop {
        attempt += 1;
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) && attempt < policy.max_attempts => {
                if backoff > Duration::ZERO {
                    std::thread::sleep(backoff.min(policy.max_backoff));
                }
                backoff = (backoff * 2).min(policy.max_backoff);
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn transient() -> io::Error {
        io::Error::new(io::ErrorKind::Interrupted, "transient")
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let calls = AtomicU32::new(0);
        let out = with_retry(&RetryPolicy::default(), || {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                Err(transient())
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn permanent_error_fails_immediately() {
        let calls = AtomicU32::new(0);
        let out: io::Result<()> = with_retry(&RetryPolicy::default(), || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(io::Error::other("dead disk"))
        });
        assert!(out.is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let calls = AtomicU32::new(0);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        let out: io::Result<()> = with_retry(&policy, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(transient())
        });
        assert_eq!(out.unwrap_err().kind(), io::ErrorKind::Interrupted);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn no_retry_policy_is_single_shot() {
        let calls = AtomicU32::new(0);
        let out: io::Result<()> = with_retry(&RetryPolicy::none(), || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(transient())
        });
        assert!(out.is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }
}
