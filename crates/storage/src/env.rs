//! The filesystem abstraction the LSM engine programs against.
//!
//! Modeled on LevelDB's `Env`: the engine never touches `std::fs` or a
//! block device directly, so the same engine runs over [`crate::SimEnv`]
//! (simulated HDD/SSD/RAID latencies, used for all paper experiments) and
//! [`crate::StdFsEnv`] (real files, used to sanity-check the engine on an
//! actual filesystem).

use bytes::Bytes;
use std::io;
use std::sync::Arc;

/// An append-only file handle (WAL, SSTable under construction, MANIFEST).
pub trait WritableFile: Send {
    /// Buffers `data` at the end of the file.
    fn append(&mut self, data: &[u8]) -> io::Result<()>;

    /// Pushes buffered data to the device. One `flush` is one device write,
    /// so the caller controls I/O granularity (e.g. one write per sub-task,
    /// the unit of compaction step S7).
    fn flush(&mut self) -> io::Result<()>;

    /// Flushes and then makes the data durable.
    fn sync(&mut self) -> io::Result<()>;

    /// Bytes appended so far (buffered or not).
    fn len(&self) -> u64;

    /// True if nothing has been appended.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Scheduling class of a positional read. Storage models use it to
/// account speculative scan readahead separately from reads a caller is
/// blocked on; the service model itself is unchanged (the device is still
/// occupied for the same time either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadClass {
    /// A read on the caller's critical path (point get, sync block load).
    #[default]
    Foreground,
    /// A speculative read issued by the scan readahead stage.
    Readahead,
}

/// A positional-read file handle (immutable SSTables, recovery-time logs).
pub trait RandomReadFile: Send + Sync {
    /// Reads `len` bytes at `offset`. Short reads at end-of-file return
    /// only the available bytes.
    fn read_at(&self, offset: u64, len: usize) -> io::Result<Bytes>;

    /// Like [`read_at`](RandomReadFile::read_at) with a scheduling-class
    /// hint. The default implementation ignores the hint; storage models
    /// override it to tally readahead I/O.
    fn read_at_class(&self, offset: u64, len: usize, _class: ReadClass) -> io::Result<Bytes> {
        self.read_at(offset, len)
    }

    /// File length in bytes.
    fn len(&self) -> u64;

    /// True if the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A flat-namespace filesystem.
pub trait Env: Send + Sync + std::fmt::Debug {
    /// Creates (or truncates) a file and returns an append handle.
    fn create(&self, name: &str) -> io::Result<Box<dyn WritableFile>>;

    /// Opens an existing file for positional reads.
    fn open(&self, name: &str) -> io::Result<Arc<dyn RandomReadFile>>;

    /// Removes a file.
    fn delete(&self, name: &str) -> io::Result<()>;

    /// Atomically renames `from` to `to`, replacing `to` if present.
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;

    /// True if `name` exists.
    fn exists(&self, name: &str) -> bool;

    /// All file names, in unspecified order.
    fn list(&self) -> io::Result<Vec<String>>;

    /// Size of `name` in bytes.
    fn size(&self, name: &str) -> io::Result<u64>;
}

/// Writes an entire file in one call (helper for CURRENT-style pointers).
pub fn write_string_file(env: &dyn Env, name: &str, contents: &str) -> io::Result<()> {
    let tmp = format!("{name}.tmp");
    let mut f = env.create(&tmp)?;
    f.append(contents.as_bytes())?;
    f.sync()?;
    drop(f);
    env.rename(&tmp, name)
}

/// Reads an entire file to a `String` (helper for CURRENT-style pointers).
pub fn read_string_file(env: &dyn Env, name: &str) -> io::Result<String> {
    let f = env.open(name)?;
    let data = f.read_at(0, f.len() as usize)?;
    String::from_utf8(data.to_vec())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}
