//! Real-filesystem [`Env`] built on `std::fs`.
//!
//! Used to sanity-check the engine against an actual filesystem and to run
//! the examples on real disks. All paper experiments use [`crate::SimEnv`]
//! instead, for determinism.

use crate::env::{Env, RandomReadFile, WritableFile};
use bytes::Bytes;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A flat-namespace filesystem rooted at a directory.
#[derive(Debug)]
pub struct StdFsEnv {
    root: PathBuf,
}

impl StdFsEnv {
    /// Creates (if needed) and wraps the directory `root`.
    pub fn new(root: impl AsRef<Path>) -> io::Result<Self> {
        fs::create_dir_all(root.as_ref())?;
        Ok(StdFsEnv {
            root: root.as_ref().to_path_buf(),
        })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Env for StdFsEnv {
    fn create(&self, name: &str) -> io::Result<Box<dyn WritableFile>> {
        let file = fs::File::create(self.path(name))?;
        Ok(Box::new(StdWritable {
            file,
            buffer: Vec::new(),
            flushed: 0,
        }))
    }

    fn open(&self, name: &str) -> io::Result<Arc<dyn RandomReadFile>> {
        let file = fs::File::open(self.path(name))?;
        let len = file.metadata()?.len();
        Ok(Arc::new(StdReadable {
            file: parking_lot::Mutex::new(file),
            len,
        }))
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        fs::remove_file(self.path(name))
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        fs::rename(self.path(from), self.path(to))
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    out.push(name.to_string());
                }
            }
        }
        Ok(out)
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        Ok(fs::metadata(self.path(name))?.len())
    }
}

struct StdWritable {
    file: fs::File,
    buffer: Vec<u8>,
    flushed: u64,
}

impl WritableFile for StdWritable {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.buffer.extend_from_slice(data);
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        if !self.buffer.is_empty() {
            self.file.write_all(&self.buffer)?;
            self.flushed += self.buffer.len() as u64;
            self.buffer.clear();
        }
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.flush()?;
        self.file.sync_data()
    }

    fn len(&self) -> u64 {
        self.flushed + self.buffer.len() as u64
    }
}

impl Drop for StdWritable {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

struct StdReadable {
    // Positional reads via seek+read under a lock: portable (no unix-only
    // FileExt), and the engine's read concurrency is per-file modest.
    file: parking_lot::Mutex<fs::File>,
    len: u64,
}

impl RandomReadFile for StdReadable {
    fn read_at(&self, offset: u64, len: usize) -> io::Result<Bytes> {
        if offset >= self.len {
            return Ok(Bytes::new());
        }
        let len = len.min((self.len - offset) as usize);
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf)?;
        Ok(Bytes::from(buf))
    }

    fn len(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{read_string_file, write_string_file};

    fn temp_env(tag: &str) -> (StdFsEnv, PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "pcp-stdenv-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        (StdFsEnv::new(&dir).unwrap(), dir)
    }

    #[test]
    fn roundtrip() {
        let (env, dir) = temp_env("rt");
        let mut f = env.create("a").unwrap();
        f.append(b"hello").unwrap();
        f.sync().unwrap();
        drop(f);
        let r = env.open("a").unwrap();
        assert_eq!(&r.read_at(0, 5).unwrap()[..], b"hello");
        assert_eq!(r.len(), 5);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn rename_and_list_and_delete() {
        let (env, dir) = temp_env("ops");
        write_string_file(&env, "x", "1").unwrap();
        env.rename("x", "y").unwrap();
        assert!(!env.exists("x"));
        assert_eq!(read_string_file(&env, "y").unwrap(), "1");
        assert_eq!(env.size("y").unwrap(), 1);
        let names = env.list().unwrap();
        assert!(names.contains(&"y".to_string()));
        env.delete("y").unwrap();
        assert!(!env.exists("y"));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn short_reads_at_eof() {
        let (env, dir) = temp_env("eof");
        write_string_file(&env, "f", "abcdef").unwrap();
        let r = env.open("f").unwrap();
        assert_eq!(&r.read_at(4, 100).unwrap()[..], b"ef");
        assert!(r.read_at(6, 1).unwrap().is_empty());
        let _ = fs::remove_dir_all(dir);
    }
}
