//! Block devices.
//!
//! [`SimDevice`] pairs an in-memory sparse backing store with a
//! [`LatencyModel`]. Every request is serviced under a per-device mutex —
//! one disk arm, one firmware queue — and the modeled service time is
//! realized by *sleeping while holding the lock*. Concurrent callers
//! therefore queue behind each other exactly like requests at a real
//! device, and a thread waiting on I/O leaves the CPU to compute threads:
//! the overlap the pipelined compaction procedure exploits.

use crate::model::{IoKind, LatencyModel, ModelState, NullModel};
use crate::stats::DeviceStats;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::time::{Duration, Instant};

/// Byte-addressed storage with positional reads and writes.
///
/// Implementations must be safe for concurrent use; whether requests are
/// serviced serially (one arm) or in parallel (RAID) is up to the device.
pub trait BlockDevice: Send + Sync + std::fmt::Debug {
    /// Reads `len` bytes at `offset`. Unwritten ranges read as zeros.
    fn read_at(&self, offset: u64, len: usize) -> io::Result<Bytes>;

    /// Writes `data` at `offset`.
    fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<()>;

    /// Addressable capacity in bytes.
    fn capacity(&self) -> u64;

    /// Monotone I/O counters for this device.
    fn stats(&self) -> &DeviceStats;

    /// Instance name (e.g. `"hdd0"`).
    fn name(&self) -> &str;

    /// Latency-model name (e.g. `"hdd-7200rpm"`).
    fn model_name(&self) -> &'static str;
}

/// Size of one backing-store chunk. Sparse: chunks materialize on first
/// write, so a 1 TB device costs memory proportional to live data only.
const CHUNK: usize = 64 * 1024;

struct Inner {
    chunks: HashMap<u64, Box<[u8]>>,
    mstate: ModelState,
    /// Monotone model-time clock; see [`SimDevice::model_now_locked`].
    model_clock: Duration,
}

/// An in-memory block device with modeled service times.
pub struct SimDevice {
    name: String,
    model: Box<dyn LatencyModel>,
    capacity: u64,
    /// Multiplier applied to modeled durations before sleeping. `1.0` is
    /// real time; `0.0` disables sleeping entirely (pure correctness runs).
    /// Stats always record the *unscaled* modeled durations.
    time_scale: f64,
    inner: Mutex<Inner>,
    stats: DeviceStats,
    epoch: Instant,
}

impl std::fmt::Debug for SimDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimDevice")
            .field("name", &self.name)
            .field("model", &self.model.name())
            .field("capacity", &self.capacity)
            .field("time_scale", &self.time_scale)
            .finish()
    }
}

impl SimDevice {
    /// Creates a device with the given latency model and time scale.
    pub fn new(
        name: impl Into<String>,
        model: impl LatencyModel + 'static,
        capacity: u64,
        time_scale: f64,
    ) -> Self {
        assert!(time_scale >= 0.0, "time_scale must be non-negative");
        SimDevice {
            name: name.into(),
            model: Box::new(model),
            capacity,
            time_scale,
            inner: Mutex::new(Inner {
                chunks: HashMap::new(),
                mstate: ModelState::default(),
                model_clock: Duration::ZERO,
            }),
            stats: DeviceStats::new(),
            epoch: Instant::now(),
        }
    }

    /// A latency-free in-memory device ("RAM disk") for tests.
    pub fn mem(capacity: u64) -> Self {
        SimDevice::new("mem", NullModel, capacity, 0.0)
    }

    /// The model-time "now" used for background effects (buffer drain).
    ///
    /// With a positive time scale, wall time maps back to model time by the
    /// inverse scale. With scale zero there is no wall anchor, so model time
    /// advances only by accumulated service durations.
    fn model_now(&self, inner: &Inner) -> Duration {
        if self.time_scale > 0.0 {
            let wall = self.epoch.elapsed();
            let mapped = wall.div_f64(self.time_scale);
            mapped.max(inner.model_clock)
        } else {
            inner.model_clock
        }
    }

    fn check_bounds(&self, offset: u64, len: usize) -> io::Result<()> {
        if offset.checked_add(len as u64).is_none_or(|end| end > self.capacity) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "request [{offset}, +{len}) beyond capacity {} of {}",
                    self.capacity, self.name
                ),
            ));
        }
        Ok(())
    }

    fn service(&self, kind: IoKind, offset: u64, len: usize, inner: &mut Inner) -> Duration {
        let now = self.model_now(inner);
        let t = self
            .model
            .service_time(kind, offset, len, now, &mut inner.mstate);
        let total = t.total();
        inner.model_clock = now + total;
        if self.time_scale > 0.0 {
            let sleep = total.mul_f64(self.time_scale);
            if !sleep.is_zero() {
                std::thread::sleep(sleep);
            }
        }
        match kind {
            IoKind::Read => self.stats.record_read(len as u64, total, t.position),
            IoKind::Write => self.stats.record_write(len as u64, total, t.position),
        }
        total
    }
}

impl BlockDevice for SimDevice {
    fn read_at(&self, offset: u64, len: usize) -> io::Result<Bytes> {
        self.check_bounds(offset, len)?;
        let mut inner = self.inner.lock();
        self.service(IoKind::Read, offset, len, &mut inner);

        let mut out = vec![0u8; len];
        let mut copied = 0usize;
        while copied < len {
            let abs = offset + copied as u64;
            let chunk_idx = abs / CHUNK as u64;
            let within = (abs % CHUNK as u64) as usize;
            let n = (CHUNK - within).min(len - copied);
            if let Some(chunk) = inner.chunks.get(&chunk_idx) {
                out[copied..copied + n].copy_from_slice(&chunk[within..within + n]);
            }
            copied += n;
        }
        Ok(Bytes::from(out))
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> io::Result<()> {
        self.check_bounds(offset, data.len())?;
        let mut inner = self.inner.lock();
        self.service(IoKind::Write, offset, data.len(), &mut inner);

        let mut copied = 0usize;
        while copied < data.len() {
            let abs = offset + copied as u64;
            let chunk_idx = abs / CHUNK as u64;
            let within = (abs % CHUNK as u64) as usize;
            let n = (CHUNK - within).min(data.len() - copied);
            let chunk = inner
                .chunks
                .entry(chunk_idx)
                .or_insert_with(|| vec![0u8; CHUNK].into_boxed_slice());
            chunk[within..within + n].copy_from_slice(&data[copied..copied + n]);
            copied += n;
        }
        Ok(())
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn model_name(&self) -> &'static str {
        self.model.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{HddModel, SsdModel};

    #[test]
    fn write_then_read_roundtrip() {
        let dev = SimDevice::mem(1 << 20);
        dev.write_at(100, b"hello block device").unwrap();
        let got = dev.read_at(100, 18).unwrap();
        assert_eq!(&got[..], b"hello block device");
    }

    #[test]
    fn unwritten_ranges_read_zero() {
        let dev = SimDevice::mem(1 << 20);
        dev.write_at(CHUNK as u64, b"x").unwrap();
        let got = dev.read_at(0, 16).unwrap();
        assert_eq!(&got[..], &[0u8; 16]);
    }

    #[test]
    fn write_spanning_chunks() {
        let dev = SimDevice::mem(1 << 20);
        let data: Vec<u8> = (0..(CHUNK + 100)).map(|i| (i % 251) as u8).collect();
        let off = (CHUNK - 50) as u64;
        dev.write_at(off, &data).unwrap();
        let got = dev.read_at(off, data.len()).unwrap();
        assert_eq!(&got[..], &data[..]);
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let dev = SimDevice::mem(1024);
        assert!(dev.write_at(1000, &[0u8; 100]).is_err());
        assert!(dev.read_at(1024, 1).is_err());
        assert!(dev.read_at(u64::MAX, 16).is_err());
        // Exactly at capacity is fine.
        dev.write_at(1000, &[1u8; 24]).unwrap();
    }

    #[test]
    fn stats_record_modeled_time() {
        let dev = SimDevice::new("hdd0", HddModel::default(), 1 << 30, 0.0);
        dev.read_at(0, 1 << 20).unwrap();
        dev.read_at(1 << 25, 4096).unwrap(); // forces a seek
        let s = dev.stats().snapshot();
        assert_eq!(s.read_ops, 2);
        assert_eq!(s.read_bytes, (1 << 20) + 4096);
        assert!(s.busy > Duration::ZERO);
        assert!(s.seek_time > Duration::ZERO);
        assert!(s.seek_time < s.busy);
    }

    #[test]
    fn scale_zero_does_not_sleep() {
        let dev = SimDevice::new("hdd0", HddModel::default(), 1 << 30, 0.0);
        let t0 = Instant::now();
        for i in 0..50 {
            dev.read_at(i * 8192, 4096).unwrap();
        }
        assert!(t0.elapsed() < Duration::from_millis(100), "no real sleeping");
        assert!(dev.stats().busy() > Duration::from_millis(10), "modeled time accrues");
    }

    #[test]
    fn scaled_sleep_is_roughly_proportional() {
        // SSD read of 16 MiB at full channels ~ 14 ms modeled; at scale
        // 0.5 expect ~7 ms wall. The request is deliberately large so
        // sub-millisecond sleep overshoot cannot dominate the ratio.
        let dev = SimDevice::new("ssd0", SsdModel::default(), 1 << 30, 0.5);
        let t0 = Instant::now();
        dev.read_at(0, 16 << 20).unwrap();
        let wall = t0.elapsed();
        let modeled = dev.stats().busy();
        assert!(wall >= modeled.mul_f64(0.4), "wall {wall:?} vs modeled {modeled:?}");
        assert!(wall < modeled.mul_f64(2.0), "wall {wall:?} vs modeled {modeled:?}");
    }

    #[test]
    fn model_clock_is_monotone_across_requests() {
        let dev = SimDevice::new("hdd0", HddModel::default(), 1 << 30, 0.0);
        dev.write_at(0, &vec![0u8; 1 << 20]).unwrap();
        dev.read_at(0, 1 << 20).unwrap();
        let c1 = dev.inner.lock().model_clock;
        dev.read_at(1 << 21, 4096).unwrap();
        let c2 = dev.inner.lock().model_clock;
        assert!(c2 > c1);
    }
}
