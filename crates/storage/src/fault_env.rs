//! Deterministic fault injection over any [`Env`].
//!
//! [`FaultEnv`] wraps an inner environment ([`crate::SimEnv`] or
//! [`crate::StdFsEnv`]) and injects failures on the way through, driven
//! entirely by a seed and an explicit plan — the same seed and plan always
//! produce the same fault sequence for the same operation sequence, which
//! is what makes reopen-and-recover and executor-equivalence tests
//! reproducible.
//!
//! Four failure classes, matching what real disks and kernels do:
//!
//! * **Transient errors** (`ErrorKind::Interrupted`) — the op failed but
//!   retrying may succeed. The wrapper does not change any state, so a
//!   retried op behaves as if the fault never happened.
//! * **Permanent errors** (`ErrorKind::Other`) — the op keeps failing;
//!   callers are expected to abort and surface a background error.
//! * **Torn syncs** — `sync` persists only a prefix of the not-yet-flushed
//!   bytes to the inner env, then the filesystem freezes. This models a
//!   power cut mid-write and is the interesting case for WAL/MANIFEST
//!   recovery code.
//! * **Crash points** — after the trigger fires, every subsequent op on
//!   this wrapper fails with `"simulated crash"`. The *inner* env still
//!   holds the exact image at crash time; tests reopen through
//!   [`FaultEnv::inner`] and run recovery against the frozen image.
//!
//! Faults fire either with a per-op probability or at a scheduled op count
//! (`fail the 3rd sync`), optionally restricted to file names containing a
//! substring (so a test can tear exactly the MANIFEST and nothing else).

use crate::env::{Env, RandomReadFile, WritableFile};
use crate::EnvRef;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The fault-site taxonomy: each I/O entry point the wrapper can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// `WritableFile::append`.
    Append,
    /// `WritableFile::flush`.
    Flush,
    /// `WritableFile::sync`.
    Sync,
    /// `RandomReadFile::read_at`.
    ReadAt,
    /// `Env::create`.
    Create,
    /// `Env::open`.
    Open,
    /// `Env::delete`.
    Delete,
    /// `Env::rename`.
    Rename,
}

/// What a scheduled trigger does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// One retryable failure (`ErrorKind::Interrupted`); state unchanged.
    Transient,
    /// The op fails now and on every later attempt (`ErrorKind::Other`).
    Permanent,
    /// `sync` persists a seed-chosen prefix of the pending bytes, then the
    /// filesystem freezes. Only meaningful on [`FaultOp::Sync`].
    TornSync,
    /// The filesystem freezes: every subsequent op fails, and the inner
    /// env keeps the image exactly as it was.
    Crash,
}

/// A scheduled fault: fire `kind` on the `at`-th matching op (1-based).
#[derive(Debug, Clone)]
struct Trigger {
    op: FaultOp,
    at: u64,
    kind: FaultKind,
    /// Only ops on file names containing this substring count and fire.
    file_contains: Option<String>,
    fired: bool,
}

/// Counters for every fault actually injected, for test assertions.
#[derive(Debug, Default, Clone)]
pub struct FaultStats {
    /// Transient (`Interrupted`) errors injected.
    pub transient: u64,
    /// Permanent (`Other`) errors injected.
    pub permanent: u64,
    /// Torn syncs injected.
    pub torn_syncs: u64,
    /// Bits flipped in read paths.
    pub bit_flips: u64,
    /// Ops rejected because the filesystem was frozen.
    pub frozen_rejects: u64,
}

/// splitmix64: tiny, high-quality, and fully determined by the seed.
#[derive(Debug)]
struct FaultRng(u64);

impl FaultRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

#[derive(Debug)]
struct Plan {
    rng: FaultRng,
    /// Per-op probability of a fault on each call.
    probability: HashMap<FaultOp, f64>,
    /// Whether probabilistic faults are retryable or permanent.
    probabilistic_kind: FaultKind,
    /// Probability that a successful `read_at` has one bit flipped.
    p_bit_flip: f64,
    /// Scheduled one-shot triggers.
    triggers: Vec<Trigger>,
    /// Ops seen so far, per site (drives scheduled triggers).
    op_counts: HashMap<FaultOp, u64>,
    /// Substring filter applied to probabilistic faults and bit flips.
    file_contains: Option<String>,
}

#[derive(Debug)]
struct Shared {
    plan: Mutex<Plan>,
    frozen: AtomicBool,
    transient: AtomicU64,
    permanent: AtomicU64,
    torn_syncs: AtomicU64,
    bit_flips: AtomicU64,
    frozen_rejects: AtomicU64,
}

impl Shared {
    fn frozen_error(&self) -> io::Error {
        self.frozen_rejects.fetch_add(1, Ordering::Relaxed);
        io::Error::other("simulated crash: filesystem frozen")
    }

    /// Decides the fate of one op on `name`. Returns the fault to apply,
    /// if any. `TornSync` decisions also return the prefix length to keep.
    fn decide(&self, op: FaultOp, name: &str) -> Option<(FaultKind, u64)> {
        if self.frozen.load(Ordering::Acquire) {
            return Some((FaultKind::Crash, 0));
        }
        let mut plan = self.plan.lock();
        let seen = {
            let c = plan.op_counts.entry(op).or_insert(0);
            *c += 1;
            *c
        };
        // Scheduled triggers take precedence over probabilistic faults.
        let mut fired_kind = None;
        for t in plan.triggers.iter_mut() {
            if t.fired || t.op != op {
                continue;
            }
            if let Some(sub) = &t.file_contains {
                if !name.contains(sub.as_str()) {
                    continue;
                }
            }
            // A filtered trigger counts only matching ops; an unfiltered
            // one rides the global per-op counter.
            let fire = if t.file_contains.is_some() {
                t.at -= 1;
                t.at == 0
            } else {
                seen == t.at
            };
            if fire {
                t.fired = true;
                fired_kind = Some(t.kind);
                break;
            }
        }
        if let Some(kind) = fired_kind {
            let torn_prefix = plan.rng.next_u64();
            return Some((kind, torn_prefix));
        }
        let matches_filter = plan
            .file_contains
            .as_ref()
            .is_none_or(|sub| name.contains(sub.as_str()));
        if matches_filter {
            if let Some(&p) = plan.probability.get(&op) {
                if p > 0.0 && plan.rng.unit_f64() < p {
                    let kind = plan.probabilistic_kind;
                    let torn_prefix = plan.rng.next_u64();
                    return Some((kind, torn_prefix));
                }
            }
        }
        None
    }

    /// Applies a decided fault at an op that has no torn-sync semantics.
    fn apply(&self, fault: Option<(FaultKind, u64)>) -> io::Result<()> {
        match fault {
            None => Ok(()),
            Some((FaultKind::Transient, _)) => {
                self.transient.fetch_add(1, Ordering::Relaxed);
                Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "injected transient fault",
                ))
            }
            Some((FaultKind::Permanent, _)) => {
                self.permanent.fetch_add(1, Ordering::Relaxed);
                Err(io::Error::other("injected permanent fault"))
            }
            Some((FaultKind::TornSync, _)) | Some((FaultKind::Crash, _)) => {
                self.frozen.store(true, Ordering::Release);
                Err(self.frozen_error())
            }
        }
    }

    /// Whether a read should flip a bit, given the read succeeded.
    fn decide_bit_flip(&self, name: &str, len: usize) -> Option<(usize, u8)> {
        if len == 0 || self.frozen.load(Ordering::Acquire) {
            return None;
        }
        let mut plan = self.plan.lock();
        if plan
            .file_contains
            .as_ref()
            .is_some_and(|sub| !name.contains(sub.as_str()))
        {
            return None;
        }
        if plan.p_bit_flip > 0.0 && plan.rng.unit_f64() < plan.p_bit_flip {
            let byte = plan.rng.below(len as u64) as usize;
            let bit = 1u8 << plan.rng.below(8);
            self.bit_flips.fetch_add(1, Ordering::Relaxed);
            Some((byte, bit))
        } else {
            None
        }
    }
}

/// Deterministic fault-injecting wrapper around another [`Env`].
#[derive(Debug, Clone)]
pub struct FaultEnv {
    inner: EnvRef,
    shared: Arc<Shared>,
}

impl FaultEnv {
    /// Wraps `inner` with no faults armed; arm them with the setters.
    pub fn new(inner: EnvRef, seed: u64) -> FaultEnv {
        FaultEnv {
            inner,
            shared: Arc::new(Shared {
                plan: Mutex::new(Plan {
                    rng: FaultRng(seed),
                    probability: HashMap::new(),
                    probabilistic_kind: FaultKind::Transient,
                    p_bit_flip: 0.0,
                    triggers: Vec::new(),
                    op_counts: HashMap::new(),
                    file_contains: None,
                }),
                frozen: AtomicBool::new(false),
                transient: AtomicU64::new(0),
                permanent: AtomicU64::new(0),
                torn_syncs: AtomicU64::new(0),
                bit_flips: AtomicU64::new(0),
                frozen_rejects: AtomicU64::new(0),
            }),
        }
    }

    /// The wrapped env — after a crash this holds the frozen image, so
    /// recovery tests reopen through it.
    pub fn inner(&self) -> EnvRef {
        Arc::clone(&self.inner)
    }

    /// Arms a per-call fault probability for `op`.
    pub fn set_probability(&self, op: FaultOp, p: f64) -> &Self {
        self.shared.plan.lock().probability.insert(op, p);
        self
    }

    /// Sets whether probabilistic faults are transient or permanent.
    pub fn set_probabilistic_kind(&self, kind: FaultKind) -> &Self {
        self.shared.plan.lock().probabilistic_kind = kind;
        self
    }

    /// Arms a per-read probability of flipping one bit in returned data.
    pub fn set_bit_flip_probability(&self, p: f64) -> &Self {
        self.shared.plan.lock().p_bit_flip = p;
        self
    }

    /// Restricts probabilistic faults and bit flips to files whose name
    /// contains `substring`.
    pub fn set_file_filter(&self, substring: impl Into<String>) -> &Self {
        self.shared.plan.lock().file_contains = Some(substring.into());
        self
    }

    /// Schedules `kind` to fire on the `nth` (1-based) call of `op`.
    pub fn schedule(&self, op: FaultOp, nth: u64, kind: FaultKind) -> &Self {
        assert!(nth > 0, "trigger positions are 1-based");
        self.shared.plan.lock().triggers.push(Trigger {
            op,
            at: nth,
            kind,
            file_contains: None,
            fired: false,
        });
        self
    }

    /// As [`FaultEnv::schedule`], counting only ops on files whose name
    /// contains `substring`.
    pub fn schedule_on_file(
        &self,
        op: FaultOp,
        nth: u64,
        kind: FaultKind,
        substring: impl Into<String>,
    ) -> &Self {
        assert!(nth > 0, "trigger positions are 1-based");
        self.shared.plan.lock().triggers.push(Trigger {
            op,
            at: nth,
            kind,
            file_contains: Some(substring.into()),
            fired: false,
        });
        self
    }

    /// True once a crash point or torn sync has frozen the filesystem.
    pub fn crashed(&self) -> bool {
        self.shared.frozen.load(Ordering::Acquire)
    }

    /// Freezes the filesystem immediately, as if a crash point had fired:
    /// every subsequent op fails and the inner image stops changing. A
    /// failover test uses this to kill a whole node at once — a scheduled
    /// crash freezes only the shard whose op tripped it, while the other
    /// shards of the same "process" must die with it.
    pub fn freeze(&self) {
        self.shared.frozen.store(true, Ordering::Release);
    }

    /// Disarms all faults and unfreezes, keeping the inner image — useful
    /// to continue a test against the same env after a fault window.
    pub fn reset(&self) {
        let mut plan = self.shared.plan.lock();
        plan.probability.clear();
        plan.p_bit_flip = 0.0;
        plan.triggers.clear();
        plan.file_contains = None;
        drop(plan);
        self.shared.frozen.store(false, Ordering::Release);
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            transient: self.shared.transient.load(Ordering::Relaxed),
            permanent: self.shared.permanent.load(Ordering::Relaxed),
            torn_syncs: self.shared.torn_syncs.load(Ordering::Relaxed),
            bit_flips: self.shared.bit_flips.load(Ordering::Relaxed),
            frozen_rejects: self.shared.frozen_rejects.load(Ordering::Relaxed),
        }
    }
}

impl Env for FaultEnv {
    fn create(&self, name: &str) -> io::Result<Box<dyn WritableFile>> {
        self.shared.apply(self.shared.decide(FaultOp::Create, name))?;
        let inner = self.inner.create(name)?;
        Ok(Box::new(FaultWritableFile {
            name: name.to_string(),
            inner,
            pending: Vec::new(),
            written: 0,
            shared: Arc::clone(&self.shared),
        }))
    }

    fn open(&self, name: &str) -> io::Result<Arc<dyn RandomReadFile>> {
        self.shared.apply(self.shared.decide(FaultOp::Open, name))?;
        let inner = self.inner.open(name)?;
        Ok(Arc::new(FaultRandomReadFile {
            name: name.to_string(),
            inner,
            shared: Arc::clone(&self.shared),
        }))
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        self.shared.apply(self.shared.decide(FaultOp::Delete, name))?;
        self.inner.delete(name)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        self.shared.apply(self.shared.decide(FaultOp::Rename, from))?;
        self.inner.rename(from, to)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        if self.shared.frozen.load(Ordering::Acquire) {
            return Err(self.shared.frozen_error());
        }
        self.inner.list()
    }

    fn size(&self, name: &str) -> io::Result<u64> {
        if self.shared.frozen.load(Ordering::Acquire) {
            return Err(self.shared.frozen_error());
        }
        self.inner.size(name)
    }
}

/// Write handle that buffers appends so a torn sync can persist a prefix.
struct FaultWritableFile {
    name: String,
    inner: Box<dyn WritableFile>,
    /// Appended but not yet handed to the inner file.
    pending: Vec<u8>,
    /// Bytes already handed to the inner file.
    written: u64,
    shared: Arc<Shared>,
}

impl FaultWritableFile {
    /// Moves all pending bytes into the inner file's buffer.
    fn drain_pending(&mut self) -> io::Result<()> {
        if !self.pending.is_empty() {
            self.inner.append(&self.pending)?;
            self.written += self.pending.len() as u64;
            self.pending.clear();
        }
        Ok(())
    }
}

impl WritableFile for FaultWritableFile {
    fn append(&mut self, data: &[u8]) -> io::Result<()> {
        self.shared
            .apply(self.shared.decide(FaultOp::Append, &self.name))?;
        self.pending.extend_from_slice(data);
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.shared
            .apply(self.shared.decide(FaultOp::Flush, &self.name))?;
        self.drain_pending()?;
        self.inner.flush()
    }

    fn sync(&mut self) -> io::Result<()> {
        match self.shared.decide(FaultOp::Sync, &self.name) {
            Some((FaultKind::TornSync, prefix_seed)) => {
                // Persist a strict prefix of what the caller believes was
                // synced, then freeze — the power went out mid-write.
                if !self.pending.is_empty() {
                    let keep = (prefix_seed % self.pending.len() as u64) as usize;
                    self.inner.append(&self.pending[..keep])?;
                    self.written += keep as u64;
                    self.pending.clear();
                    self.inner.sync()?;
                }
                self.shared.torn_syncs.fetch_add(1, Ordering::Relaxed);
                self.shared.frozen.store(true, Ordering::Release);
                Err(io::Error::other("injected torn sync: filesystem frozen"))
            }
            other => {
                self.shared.apply(other)?;
                self.drain_pending()?;
                self.inner.sync()
            }
        }
    }

    fn len(&self) -> u64 {
        self.written + self.pending.len() as u64
    }
}

/// Read handle that injects read errors and bit flips.
struct FaultRandomReadFile {
    name: String,
    inner: Arc<dyn RandomReadFile>,
    shared: Arc<Shared>,
}

impl RandomReadFile for FaultRandomReadFile {
    fn read_at(&self, offset: u64, len: usize) -> io::Result<Bytes> {
        self.shared
            .apply(self.shared.decide(FaultOp::ReadAt, &self.name))?;
        let data = self.inner.read_at(offset, len)?;
        if let Some((byte, bit)) = self.shared.decide_bit_flip(&self.name, data.len()) {
            let mut corrupted = data.to_vec();
            corrupted[byte] ^= bit;
            return Ok(Bytes::from(corrupted));
        }
        Ok(data)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{read_string_file, write_string_file};
    use crate::{SimDevice, SimEnv};

    fn mem_env() -> EnvRef {
        Arc::new(SimEnv::new(Arc::new(SimDevice::mem(1 << 26))))
    }

    #[test]
    fn passthrough_when_unarmed() {
        let fault = FaultEnv::new(mem_env(), 7);
        write_string_file(&fault, "a.txt", "hello").unwrap();
        assert_eq!(read_string_file(&fault, "a.txt").unwrap(), "hello");
        assert!(!fault.crashed());
        assert_eq!(fault.stats().transient, 0);
    }

    #[test]
    fn scheduled_transient_fault_fires_once() {
        let fault = FaultEnv::new(mem_env(), 7);
        fault.schedule(FaultOp::Sync, 1, FaultKind::Transient);
        let mut f = fault.create("x").unwrap();
        f.append(b"abc").unwrap();
        let err = f.sync().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        // Retry succeeds and the data survives.
        f.sync().unwrap();
        drop(f);
        assert_eq!(read_string_file(&fault, "x").unwrap(), "abc");
        assert_eq!(fault.stats().transient, 1);
    }

    #[test]
    fn permanent_fault_keeps_failing() {
        let fault = FaultEnv::new(mem_env(), 7);
        fault.set_probability(FaultOp::Sync, 1.0);
        fault.set_probabilistic_kind(FaultKind::Permanent);
        let mut f = fault.create("x").unwrap();
        f.append(b"abc").unwrap();
        for _ in 0..3 {
            assert!(f.sync().is_err());
        }
        assert_eq!(fault.stats().permanent, 3);
    }

    #[test]
    fn torn_sync_persists_prefix_and_freezes() {
        let fault = FaultEnv::new(mem_env(), 42);
        fault.schedule(FaultOp::Sync, 1, FaultKind::TornSync);
        let mut f = fault.create("wal").unwrap();
        f.append(&[b'z'; 100]).unwrap();
        assert!(f.sync().is_err());
        assert!(fault.crashed());
        // Everything through the wrapper now fails...
        assert!(fault.create("y").is_err());
        // ...but the inner env holds a strict prefix of the write.
        let inner = fault.inner();
        let n = inner.size("wal").unwrap();
        assert!(n < 100, "torn sync must persist a strict prefix, got {n}");
        assert_eq!(fault.stats().torn_syncs, 1);
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let fault = FaultEnv::new(mem_env(), 9);
        write_string_file(&fault, "t", "payload-payload").unwrap();
        fault.set_bit_flip_probability(1.0);
        let f = fault.open("t").unwrap();
        let got = f.read_at(0, 15).unwrap();
        let orig = b"payload-payload";
        let diff: u32 = got
            .iter()
            .zip(orig.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
        assert_eq!(fault.stats().bit_flips, 1);
    }

    #[test]
    fn file_filter_scopes_faults() {
        let fault = FaultEnv::new(mem_env(), 11);
        fault.set_file_filter("MANIFEST");
        fault.set_probability(FaultOp::Sync, 1.0);
        fault.set_probabilistic_kind(FaultKind::Permanent);
        // Non-matching file is untouched.
        write_string_file(&fault, "data.sst", "ok").unwrap();
        // Matching file fails.
        let mut f = fault.create("MANIFEST-000001").unwrap();
        f.append(b"v").unwrap();
        assert!(f.sync().is_err());
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let run = |seed| {
            let fault = FaultEnv::new(mem_env(), seed);
            fault.set_probability(FaultOp::Append, 0.3);
            let mut f = fault.create("x").unwrap();
            let mut outcomes = Vec::new();
            for _ in 0..64 {
                outcomes.push(f.append(b"d").is_ok());
            }
            outcomes
        };
        assert_eq!(run(123), run(123));
        assert_ne!(run(123), run(456));
    }

    #[test]
    fn scheduled_trigger_on_filtered_file_counts_matching_ops_only() {
        let fault = FaultEnv::new(mem_env(), 5);
        fault.schedule_on_file(FaultOp::Append, 2, FaultKind::Permanent, "MANIFEST");
        let mut other = fault.create("table.sst").unwrap();
        let mut man = fault.create("MANIFEST-1").unwrap();
        // Appends to other files never advance the trigger.
        for _ in 0..5 {
            other.append(b"x").unwrap();
        }
        man.append(b"a").unwrap();
        assert!(man.append(b"b").is_err());
    }
}
