//! Device latency models.
//!
//! A [`LatencyModel`] maps one I/O request to a modeled service time, given
//! mutable per-device state (head position, write-buffer level). The models
//! are deterministic: the same request sequence always produces the same
//! service times, which keeps every experiment reproducible.
//!
//! Two concrete models mirror the paper's testbed:
//!
//! * [`HddModel`] — 7200 RPM SATA disk: distance-dependent seek, half-turn
//!   rotational latency, ~120 MB/s media rate, and an on-drive write buffer
//!   that makes write bandwidth look better than read bandwidth (the paper
//!   observes exactly this in §IV-B: "the write request is considered
//!   completed after the data has been written into the disk write buffer").
//! * [`SsdModel`] — Intel X25-M-class flash SSD: tens-of-µs access latency,
//!   read bandwidth that *grows with I/O size* as more internal channels
//!   engage (the effect behind Fig. 11(a)), and erase-penalty writes that
//!   make step WRITE slower than step READ (Fig. 5(b) / 8(b) / 9(b)).

use std::time::Duration;

/// Direction of an I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    Read,
    Write,
}

/// Decomposed service time for one request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceTime {
    /// Positioning overhead: seek + rotation (HDD) or access latency (SSD).
    pub position: Duration,
    /// Data movement at the effective transfer rate.
    pub transfer: Duration,
    /// Stall waiting for internal resources (e.g. a full write buffer).
    pub stall: Duration,
}

impl ServiceTime {
    /// Total modeled duration of the request.
    pub fn total(&self) -> Duration {
        self.position + self.transfer + self.stall
    }
}

/// Mutable per-device mechanical/firmware state threaded through the model.
#[derive(Debug, Clone, Default)]
pub struct ModelState {
    /// Byte address the head (or last access) ended at.
    pub head: u64,
    /// Write-buffer fill level in bytes (HDD).
    pub buffer_level: u64,
    /// Model-time instant up to which the buffer has drained.
    pub buffer_drained_to: Duration,
}

/// A deterministic device timing model.
pub trait LatencyModel: Send + Sync + std::fmt::Debug {
    /// Service time for a request of `len` bytes at byte address `offset`,
    /// arriving at model-time `now`. Updates `state` (head position, buffer
    /// level) as a side effect.
    fn service_time(
        &self,
        kind: IoKind,
        offset: u64,
        len: usize,
        now: Duration,
        state: &mut ModelState,
    ) -> ServiceTime;

    /// Human-readable model name for reports.
    fn name(&self) -> &'static str;
}

/// Zero-latency model: every request is free. Used by correctness tests and
/// as the backing for "RAM disk" environments.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullModel;

impl LatencyModel for NullModel {
    fn service_time(
        &self,
        _kind: IoKind,
        offset: u64,
        len: usize,
        _now: Duration,
        state: &mut ModelState,
    ) -> ServiceTime {
        state.head = offset + len as u64;
        ServiceTime::default()
    }

    fn name(&self) -> &'static str {
        "null"
    }
}

/// 7200 RPM SATA hard-disk model.
#[derive(Debug, Clone)]
pub struct HddModel {
    /// Shortest track-to-track seek.
    pub min_seek: Duration,
    /// Full-stroke seek.
    pub max_seek: Duration,
    /// Average rotational latency (half a revolution; 4.17 ms at 7200 RPM).
    pub rotational_latency: Duration,
    /// Sustained media transfer rate, bytes/second.
    pub media_rate: u64,
    /// Host-to-buffer burst rate for writes, bytes/second.
    pub burst_rate: u64,
    /// On-drive write-buffer capacity, bytes.
    pub buffer_capacity: u64,
    /// Addressable capacity used to normalize seek distance.
    pub capacity: u64,
}

impl Default for HddModel {
    fn default() -> Self {
        // Like the SSD default, these numbers are scaled ~1.7x up from the
        // paper's 7200 RPM SATA disk so that the CPU:disk time ratio on
        // hosts with modern cores matches the ratio on the paper's 2.4 GHz
        // Xeon (read ≈ 45 %, compute ≈ 40 %, write ≈ 15 % of an SCP
        // compaction — Fig. 5(a)). `HddModel::sata_7200()` keeps the
        // physical 2014 numbers.
        HddModel {
            min_seek: Duration::from_micros(300),
            max_seek: Duration::from_millis(5),
            rotational_latency: Duration::from_micros(2500),
            media_rate: 200 * 1024 * 1024,
            burst_rate: 400 * 1024 * 1024,
            buffer_capacity: 32 * 1024 * 1024,
            capacity: 1 << 40, // 1 TB
        }
    }
}

impl HddModel {
    /// The paper's actual device class: 7200 RPM 1 TB SATA III disk.
    pub fn sata_7200() -> HddModel {
        HddModel {
            min_seek: Duration::from_micros(500),
            max_seek: Duration::from_millis(10),
            rotational_latency: Duration::from_micros(4170),
            media_rate: 120 * 1024 * 1024,
            burst_rate: 250 * 1024 * 1024,
            buffer_capacity: 32 * 1024 * 1024,
            capacity: 1 << 40,
        }
    }
}

impl HddModel {
    fn seek(&self, from: u64, to: u64) -> Duration {
        if from == to {
            return Duration::ZERO;
        }
        let dist = from.abs_diff(to) as f64 / self.capacity as f64;
        let span = self.max_seek.saturating_sub(self.min_seek);
        self.min_seek + span.mul_f64(dist.sqrt().min(1.0)) + self.rotational_latency
    }

    /// Advances the background buffer drain up to model-time `now`.
    fn drain_buffer(&self, now: Duration, state: &mut ModelState) {
        if now > state.buffer_drained_to {
            let dt = now - state.buffer_drained_to;
            let drained = (dt.as_secs_f64() * self.media_rate as f64) as u64;
            state.buffer_level = state.buffer_level.saturating_sub(drained);
            state.buffer_drained_to = now;
        }
    }
}

impl LatencyModel for HddModel {
    fn service_time(
        &self,
        kind: IoKind,
        offset: u64,
        len: usize,
        now: Duration,
        state: &mut ModelState,
    ) -> ServiceTime {
        self.drain_buffer(now, state);
        match kind {
            IoKind::Read => {
                let position = self.seek(state.head, offset);
                let transfer =
                    Duration::from_secs_f64(len as f64 / self.media_rate as f64);
                state.head = offset + len as u64;
                ServiceTime {
                    position,
                    transfer,
                    stall: Duration::ZERO,
                }
            }
            IoKind::Write => {
                // Writes complete into the on-drive buffer at burst rate; if
                // the buffer is full the host stalls while the drive drains
                // at media rate. Buffered writes do not move the host-visible
                // head (the drive reorders the physical write-back), which
                // reproduces the paper's "write bandwidth is better than step
                // read" observation.
                let len64 = len as u64;
                let mut stall = Duration::ZERO;
                let overflow =
                    (state.buffer_level + len64).saturating_sub(self.buffer_capacity);
                if overflow > 0 {
                    stall = Duration::from_secs_f64(
                        overflow as f64 / self.media_rate as f64,
                    );
                    state.buffer_level = self.buffer_capacity;
                } else {
                    state.buffer_level += len64;
                }
                let transfer =
                    Duration::from_secs_f64(len as f64 / self.burst_rate as f64);
                // The drain clock also advances past the stall we just took.
                state.buffer_drained_to += stall;
                ServiceTime {
                    position: Duration::ZERO,
                    transfer,
                    stall,
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "hdd-7200rpm"
    }
}

/// Flash SSD model (Intel X25-M class).
#[derive(Debug, Clone)]
pub struct SsdModel {
    /// Per-request access latency for reads.
    pub read_latency: Duration,
    /// Per-request access latency for writes (flash program is slower).
    pub write_latency: Duration,
    /// Per-channel read bandwidth, bytes/second.
    pub channel_read_rate: u64,
    /// Per-channel write bandwidth, bytes/second (erase-before-write
    /// penalty keeps this well below the read rate).
    pub channel_write_rate: u64,
    /// Number of internal channels.
    pub channels: u32,
    /// Stripe unit: bytes of one request served per channel before the next
    /// channel engages. Requests smaller than this use a single channel,
    /// which is why small I/Os see a fraction of the peak bandwidth
    /// (Fig. 11(a)).
    pub stripe: u64,
}

impl Default for SsdModel {
    fn default() -> Self {
        // The paper's X25-M read ≈ 250 MB/s / write ≈ 80-100 MB/s against a
        // 2.4 GHz 2010 Xeon core. Hosts running this reproduction have
        // roughly 2x that core's compute bandwidth, so the default SSD is
        // scaled up proportionally (SATA3-class: ~384/232 MB/s) to preserve
        // the paper's CPU:SSD cost *ratio* — the quantity every figure's
        // shape depends on. `SsdModel::x25m()` keeps the original numbers.
        SsdModel {
            read_latency: Duration::from_micros(65),
            write_latency: Duration::from_micros(85),
            channel_read_rate: 150 * 1024 * 1024, // 8 ch => ~1.2 GB/s peak
            channel_write_rate: 68 * 1024 * 1024, // 8 ch => 544 MB/s peak
            channels: 8,
            stripe: 32 * 1024,
        }
    }
}

impl SsdModel {
    /// The paper's actual device (Intel X25-M, SATA II era): read ≈
    /// 264 MB/s, write ≈ 96 MB/s peak.
    pub fn x25m() -> SsdModel {
        SsdModel {
            channel_read_rate: 33 * 1024 * 1024,
            channel_write_rate: 12 * 1024 * 1024,
            ..SsdModel::default()
        }
    }
}

impl SsdModel {
    fn effective_channels(&self, len: usize) -> u32 {
        let engaged = (len as u64).div_ceil(self.stripe.max(1)).max(1);
        (engaged as u32).min(self.channels)
    }

    /// Effective bandwidth (bytes/second) for one request of `len` bytes.
    pub fn effective_rate(&self, kind: IoKind, len: usize) -> u64 {
        let per_channel = match kind {
            IoKind::Read => self.channel_read_rate,
            IoKind::Write => self.channel_write_rate,
        };
        per_channel * self.effective_channels(len) as u64
    }
}

impl LatencyModel for SsdModel {
    fn service_time(
        &self,
        kind: IoKind,
        offset: u64,
        len: usize,
        _now: Duration,
        state: &mut ModelState,
    ) -> ServiceTime {
        let position = match kind {
            IoKind::Read => self.read_latency,
            IoKind::Write => self.write_latency,
        };
        let rate = self.effective_rate(kind, len);
        let transfer = Duration::from_secs_f64(len as f64 / rate as f64);
        state.head = offset + len as u64;
        ServiceTime {
            position,
            transfer,
            stall: Duration::ZERO,
        }
    }

    fn name(&self) -> &'static str {
        "ssd-x25m"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(model: &dyn LatencyModel, state: &mut ModelState, off: u64, len: usize) -> ServiceTime {
        model.service_time(IoKind::Read, off, len, Duration::ZERO, state)
    }

    #[test]
    fn null_model_is_free() {
        let mut st = ModelState::default();
        let t = read(&NullModel, &mut st, 0, 1 << 20);
        assert_eq!(t.total(), Duration::ZERO);
        assert_eq!(st.head, 1 << 20);
    }

    #[test]
    fn hdd_sequential_read_has_no_seek() {
        let m = HddModel::default();
        let mut st = ModelState::default();
        let first = read(&m, &mut st, 0, 4096);
        assert_eq!(first.position, Duration::ZERO, "head starts at 0");
        let second = read(&m, &mut st, 4096, 4096);
        assert_eq!(second.position, Duration::ZERO, "sequential continuation");
        assert!(second.transfer > Duration::ZERO);
    }

    #[test]
    fn hdd_random_read_pays_seek_and_rotation() {
        let m = HddModel::default();
        let mut st = ModelState::default();
        read(&m, &mut st, 0, 4096);
        let far = read(&m, &mut st, m.capacity / 2, 4096);
        assert!(far.position >= m.min_seek + m.rotational_latency);
        assert!(far.position <= m.max_seek + m.rotational_latency);
    }

    #[test]
    fn hdd_longer_seeks_cost_more() {
        let m = HddModel::default();
        let near = m.seek(0, 1 << 20);
        let far = m.seek(0, m.capacity);
        assert!(far > near);
        assert!(far <= m.max_seek + m.rotational_latency);
    }

    #[test]
    fn hdd_buffered_writes_are_faster_than_reads() {
        let m = HddModel::default();
        let mut st = ModelState::default();
        let w = m.service_time(IoKind::Write, 1 << 30, 1 << 20, Duration::ZERO, &mut st);
        let mut st2 = ModelState { head: 123, ..Default::default() };
        let r = m.service_time(IoKind::Read, 1 << 30, 1 << 20, Duration::ZERO, &mut st2);
        assert!(w.total() < r.total(), "buffered write {w:?} vs seeking read {r:?}");
    }

    #[test]
    fn hdd_full_buffer_forces_media_rate_stall() {
        let m = HddModel::default();
        let mut st = ModelState::default();
        // Fill the buffer instantly (model time frozen at zero => no drain).
        let mut total = Duration::ZERO;
        let chunk = 1 << 20;
        for i in 0..((m.buffer_capacity / chunk as u64) + 4) {
            let t = m.service_time(
                IoKind::Write,
                i * chunk as u64,
                chunk,
                Duration::ZERO,
                &mut st,
            );
            total += t.total();
        }
        // Final writes must include a media-rate stall component.
        let t = m.service_time(IoKind::Write, 0, chunk, Duration::ZERO, &mut st);
        assert!(t.stall > Duration::ZERO);
        let media_time = Duration::from_secs_f64(chunk as f64 / m.media_rate as f64);
        assert!(t.total() >= media_time, "overflowing write at media rate");
    }

    #[test]
    fn hdd_buffer_drains_over_time() {
        let m = HddModel::default();
        let mut st = ModelState {
            buffer_level: m.buffer_capacity,
            ..Default::default()
        };
        // One second at 120 MB/s drains well over 32 MiB.
        let t = m.service_time(IoKind::Write, 0, 4096, Duration::from_secs(1), &mut st);
        assert_eq!(t.stall, Duration::ZERO);
        assert!(st.buffer_level <= 4096);
    }

    #[test]
    fn ssd_bandwidth_scales_with_io_size() {
        let m = SsdModel::default();
        let small = m.effective_rate(IoKind::Read, 4 * 1024);
        let medium = m.effective_rate(IoKind::Read, 64 * 1024);
        let large = m.effective_rate(IoKind::Read, 4 << 20);
        assert!(small < medium && medium < large);
        assert_eq!(large, m.channel_read_rate * m.channels as u64);
        // Beyond full engagement, bandwidth saturates.
        assert_eq!(m.effective_rate(IoKind::Read, 64 << 20), large);
    }

    #[test]
    fn ssd_writes_slower_than_reads() {
        let m = SsdModel::default();
        let mut st = ModelState::default();
        let r = m.service_time(IoKind::Read, 0, 1 << 20, Duration::ZERO, &mut st);
        let w = m.service_time(IoKind::Write, 0, 1 << 20, Duration::ZERO, &mut st);
        assert!(w.total() > r.total());
    }

    #[test]
    fn ssd_faster_than_hdd_for_random_small_reads() {
        let ssd = SsdModel::default();
        let hdd = HddModel::default();
        let mut s1 = ModelState::default();
        let mut s2 = ModelState { head: 1 << 35, ..Default::default() };
        let st = ssd.service_time(IoKind::Read, 0, 4096, Duration::ZERO, &mut s1);
        let ht = hdd.service_time(IoKind::Read, 0, 4096, Duration::ZERO, &mut s2);
        assert!(st.total() * 5 < ht.total());
    }
}
