//! Per-device counters used by the profiling harnesses.
//!
//! All counters are relaxed atomics: they are monotone tallies read only
//! after the workload quiesces (or approximately, for progress reporting),
//! so no ordering is required beyond atomicity — see the "Statistics"
//! discussion in Mara Bos's *Rust Atomics and Locks*, ch. 2/3.

use pcp_obs::Histogram;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// Monotone counters for one device (or one RAID array).
#[derive(Debug, Default)]
pub struct DeviceStats {
    read_ops: AtomicU64,
    read_bytes: AtomicU64,
    write_ops: AtomicU64,
    write_bytes: AtomicU64,
    /// Modeled device busy time, nanoseconds. With `time_scale == 1` this
    /// is (approximately) the wall time spent inside the service lock.
    busy_nanos: AtomicU64,
    /// Modeled seek/access overhead within `busy_nanos`, nanoseconds.
    seek_nanos: AtomicU64,
    /// Subset of `read_ops`/`read_bytes` issued by the scan readahead
    /// stage (off the caller's critical path).
    readahead_ops: AtomicU64,
    readahead_bytes: AtomicU64,
    /// Per-op modeled service-time distribution, reads (nanoseconds).
    read_latency: Arc<Histogram>,
    /// Per-op modeled service-time distribution, writes (nanoseconds).
    write_latency: Arc<Histogram>,
}

impl DeviceStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_read(&self, bytes: u64, busy: Duration, seek: Duration) {
        self.read_ops.fetch_add(1, Relaxed);
        self.read_bytes.fetch_add(bytes, Relaxed);
        self.busy_nanos.fetch_add(busy.as_nanos() as u64, Relaxed);
        self.seek_nanos.fetch_add(seek.as_nanos() as u64, Relaxed);
        self.read_latency.record_duration(busy);
    }

    pub(crate) fn record_write(&self, bytes: u64, busy: Duration, seek: Duration) {
        self.write_ops.fetch_add(1, Relaxed);
        self.write_bytes.fetch_add(bytes, Relaxed);
        self.busy_nanos.fetch_add(busy.as_nanos() as u64, Relaxed);
        self.seek_nanos.fetch_add(seek.as_nanos() as u64, Relaxed);
        self.write_latency.record_duration(busy);
    }

    /// Tags one already-recorded read of `bytes` as scan readahead.
    pub fn record_readahead(&self, bytes: u64) {
        self.readahead_ops.fetch_add(1, Relaxed);
        self.readahead_bytes.fetch_add(bytes, Relaxed);
    }

    /// Number of read operations serviced.
    pub fn read_ops(&self) -> u64 {
        self.read_ops.load(Relaxed)
    }

    /// Read operations issued by the scan readahead stage.
    pub fn readahead_ops(&self) -> u64 {
        self.readahead_ops.load(Relaxed)
    }

    /// Bytes read by the scan readahead stage.
    pub fn readahead_bytes(&self) -> u64 {
        self.readahead_bytes.load(Relaxed)
    }

    /// Total bytes read.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes.load(Relaxed)
    }

    /// Number of write operations serviced.
    pub fn write_ops(&self) -> u64 {
        self.write_ops.load(Relaxed)
    }

    /// Total bytes written.
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes.load(Relaxed)
    }

    /// Total modeled busy time.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_nanos.load(Relaxed))
    }

    /// Modeled positioning (seek + rotation / access-latency) time.
    pub fn seek_time(&self) -> Duration {
        Duration::from_nanos(self.seek_nanos.load(Relaxed))
    }

    /// Per-op modeled read service-time distribution (nanoseconds).
    pub fn read_latency(&self) -> &Arc<Histogram> {
        &self.read_latency
    }

    /// Per-op modeled write service-time distribution (nanoseconds).
    pub fn write_latency(&self) -> &Arc<Histogram> {
        &self.write_latency
    }

    /// Snapshot of all counters, for before/after deltas.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            read_ops: self.read_ops(),
            read_bytes: self.read_bytes(),
            write_ops: self.write_ops(),
            write_bytes: self.write_bytes(),
            busy: self.busy(),
            seek_time: self.seek_time(),
        }
    }
}

/// Registers `device`'s counters and latency histograms in `registry`
/// under the `pcp_device_*` namespace, labelled `device="<label>"`.
/// Counters are exported by closure collector (the device keeps its own
/// atomics, read at scrape time); the latency histograms are shared by
/// `Arc`, so the registry sees every sample the device records. Works for
/// any [`BlockDevice`](crate::BlockDevice) — [`SimDevice`](crate::SimDevice),
/// [`Raid0`](crate::Raid0) (whose array-level stats aggregate its members),
/// or a trace wrapper.
pub fn register_device_metrics(
    registry: &pcp_obs::Registry,
    label: &str,
    device: &crate::DeviceRef,
) {
    let labels = vec![("device".to_string(), label.to_string())];
    type Getter = fn(&DeviceStats) -> u64;
    let counters: [(&str, &str, Getter); 8] = [
        ("pcp_device_read_ops_total", "read operations serviced", |s| s.read_ops()),
        ("pcp_device_read_bytes_total", "bytes read", |s| s.read_bytes()),
        ("pcp_device_readahead_ops_total", "read operations issued by scan readahead", |s| {
            s.readahead_ops()
        }),
        ("pcp_device_readahead_bytes_total", "bytes read by scan readahead", |s| {
            s.readahead_bytes()
        }),
        ("pcp_device_write_ops_total", "write operations serviced", |s| s.write_ops()),
        ("pcp_device_write_bytes_total", "bytes written", |s| s.write_bytes()),
        ("pcp_device_busy_nanoseconds_total", "modeled device busy time", |s| {
            s.busy_nanos.load(Relaxed)
        }),
        ("pcp_device_seek_nanoseconds_total", "modeled positioning time within busy time", |s| {
            s.seek_nanos.load(Relaxed)
        }),
    ];
    for (name, help, get) in counters {
        let dev = Arc::clone(device);
        registry.register_fn_counter(name, help, labels.clone(), move || get(dev.stats()));
    }
    registry.register_histogram(
        "pcp_device_read_latency_nanoseconds",
        "per-op modeled read service time",
        labels.clone(),
        Arc::clone(device.stats().read_latency()),
    );
    registry.register_histogram(
        "pcp_device_write_latency_nanoseconds",
        "per-op modeled write service time",
        labels,
        Arc::clone(device.stats().write_latency()),
    );
}

/// Plain-data copy of [`DeviceStats`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub read_ops: u64,
    pub read_bytes: u64,
    pub write_ops: u64,
    pub write_bytes: u64,
    pub busy: Duration,
    pub seek_time: Duration,
}

impl StatsSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            read_ops: self.read_ops.saturating_sub(earlier.read_ops),
            read_bytes: self.read_bytes.saturating_sub(earlier.read_bytes),
            write_ops: self.write_ops.saturating_sub(earlier.write_ops),
            write_bytes: self.write_bytes.saturating_sub(earlier.write_bytes),
            busy: self.busy.saturating_sub(earlier.busy),
            seek_time: self.seek_time.saturating_sub(earlier.seek_time),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = DeviceStats::new();
        s.record_read(4096, Duration::from_micros(100), Duration::from_micros(10));
        s.record_read(4096, Duration::from_micros(100), Duration::from_micros(10));
        s.record_write(8192, Duration::from_micros(50), Duration::ZERO);
        assert_eq!(s.read_ops(), 2);
        assert_eq!(s.read_bytes(), 8192);
        assert_eq!(s.write_ops(), 1);
        assert_eq!(s.write_bytes(), 8192);
        assert_eq!(s.busy(), Duration::from_micros(250));
        assert_eq!(s.seek_time(), Duration::from_micros(20));
    }

    #[test]
    fn latency_histograms_track_ops() {
        let s = DeviceStats::new();
        s.record_read(4096, Duration::from_micros(100), Duration::ZERO);
        s.record_write(4096, Duration::from_micros(50), Duration::ZERO);
        s.record_write(4096, Duration::from_micros(70), Duration::ZERO);
        assert_eq!(s.read_latency().count(), 1);
        assert_eq!(s.write_latency().count(), 2);
        assert_eq!(s.read_latency().max(), 100_000);
        assert!(s.write_latency().mean() >= 50_000);
    }

    #[test]
    fn register_device_metrics_exports_counters_and_histograms() {
        use crate::{DeviceRef, SimDevice};
        let dev: DeviceRef = Arc::new(SimDevice::mem(1 << 20));
        dev.write_at(0, &[7u8; 4096]).unwrap();
        dev.read_at(0, 4096).unwrap();
        let registry = pcp_obs::Registry::new();
        register_device_metrics(&registry, "mem0", &dev);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("pcp_device_read_ops_total", &[("device", "mem0")]),
            1
        );
        assert_eq!(
            snap.counter("pcp_device_write_bytes_total", &[("device", "mem0")]),
            4096
        );
        // Ops recorded after registration are visible too (shared state).
        dev.read_at(0, 512).unwrap();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("pcp_device_read_ops_total", &[("device", "mem0")]),
            2
        );
        match &snap
            .get_with(
                "pcp_device_read_latency_nanoseconds",
                &[("device", "mem0")],
            )
            .unwrap()
            .value
        {
            pcp_obs::SampleValue::Histogram(h) => assert_eq!(h.count, 2),
            other => panic!("expected histogram, got {other:?}"),
        }
        pcp_obs::validate_exposition(&registry.render_prometheus()).unwrap();
    }

    #[test]
    fn snapshot_delta() {
        let s = DeviceStats::new();
        s.record_read(100, Duration::from_micros(5), Duration::ZERO);
        let a = s.snapshot();
        s.record_write(200, Duration::from_micros(7), Duration::ZERO);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.read_ops, 0);
        assert_eq!(d.write_ops, 1);
        assert_eq!(d.write_bytes, 200);
        assert_eq!(d.busy, Duration::from_micros(7));
    }
}
