//! Per-device counters used by the profiling harnesses.
//!
//! All counters are relaxed atomics: they are monotone tallies read only
//! after the workload quiesces (or approximately, for progress reporting),
//! so no ordering is required beyond atomicity — see the "Statistics"
//! discussion in Mara Bos's *Rust Atomics and Locks*, ch. 2/3.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// Monotone counters for one device (or one RAID array).
#[derive(Debug, Default)]
pub struct DeviceStats {
    read_ops: AtomicU64,
    read_bytes: AtomicU64,
    write_ops: AtomicU64,
    write_bytes: AtomicU64,
    /// Modeled device busy time, nanoseconds. With `time_scale == 1` this
    /// is (approximately) the wall time spent inside the service lock.
    busy_nanos: AtomicU64,
    /// Modeled seek/access overhead within `busy_nanos`, nanoseconds.
    seek_nanos: AtomicU64,
}

impl DeviceStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_read(&self, bytes: u64, busy: Duration, seek: Duration) {
        self.read_ops.fetch_add(1, Relaxed);
        self.read_bytes.fetch_add(bytes, Relaxed);
        self.busy_nanos.fetch_add(busy.as_nanos() as u64, Relaxed);
        self.seek_nanos.fetch_add(seek.as_nanos() as u64, Relaxed);
    }

    pub(crate) fn record_write(&self, bytes: u64, busy: Duration, seek: Duration) {
        self.write_ops.fetch_add(1, Relaxed);
        self.write_bytes.fetch_add(bytes, Relaxed);
        self.busy_nanos.fetch_add(busy.as_nanos() as u64, Relaxed);
        self.seek_nanos.fetch_add(seek.as_nanos() as u64, Relaxed);
    }

    /// Number of read operations serviced.
    pub fn read_ops(&self) -> u64 {
        self.read_ops.load(Relaxed)
    }

    /// Total bytes read.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes.load(Relaxed)
    }

    /// Number of write operations serviced.
    pub fn write_ops(&self) -> u64 {
        self.write_ops.load(Relaxed)
    }

    /// Total bytes written.
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes.load(Relaxed)
    }

    /// Total modeled busy time.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_nanos.load(Relaxed))
    }

    /// Modeled positioning (seek + rotation / access-latency) time.
    pub fn seek_time(&self) -> Duration {
        Duration::from_nanos(self.seek_nanos.load(Relaxed))
    }

    /// Snapshot of all counters, for before/after deltas.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            read_ops: self.read_ops(),
            read_bytes: self.read_bytes(),
            write_ops: self.write_ops(),
            write_bytes: self.write_bytes(),
            busy: self.busy(),
            seek_time: self.seek_time(),
        }
    }
}

/// Plain-data copy of [`DeviceStats`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub read_ops: u64,
    pub read_bytes: u64,
    pub write_ops: u64,
    pub write_bytes: u64,
    pub busy: Duration,
    pub seek_time: Duration,
}

impl StatsSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            read_ops: self.read_ops.saturating_sub(earlier.read_ops),
            read_bytes: self.read_bytes.saturating_sub(earlier.read_bytes),
            write_ops: self.write_ops.saturating_sub(earlier.write_ops),
            write_bytes: self.write_bytes.saturating_sub(earlier.write_bytes),
            busy: self.busy.saturating_sub(earlier.busy),
            seek_time: self.seek_time.saturating_sub(earlier.seek_time),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = DeviceStats::new();
        s.record_read(4096, Duration::from_micros(100), Duration::from_micros(10));
        s.record_read(4096, Duration::from_micros(100), Duration::from_micros(10));
        s.record_write(8192, Duration::from_micros(50), Duration::ZERO);
        assert_eq!(s.read_ops(), 2);
        assert_eq!(s.read_bytes(), 8192);
        assert_eq!(s.write_ops(), 1);
        assert_eq!(s.write_bytes(), 8192);
        assert_eq!(s.busy(), Duration::from_micros(250));
        assert_eq!(s.seek_time(), Duration::from_micros(20));
    }

    #[test]
    fn snapshot_delta() {
        let s = DeviceStats::new();
        s.record_read(100, Duration::from_micros(5), Duration::ZERO);
        let a = s.snapshot();
        s.record_write(200, Duration::from_micros(7), Duration::ZERO);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.read_ops, 0);
        assert_eq!(d.write_ops, 1);
        assert_eq!(d.write_bytes, 200);
        assert_eq!(d.busy, Duration::from_micros(7));
    }
}
