//! # pcp-storage
//!
//! The I/O substrate of the pipelined-compaction LSM-tree. Compaction steps
//! S1 (READ) and S7 (WRITE) spend their time here.
//!
//! The paper's experiments ran on real 7200 RPM SATA disks and an Intel
//! X25-M SSD. To make the reproduction deterministic and host-independent,
//! this crate provides *simulated* block devices whose service times follow
//! published device characteristics and are realized with real sleeps —
//! so a thread doing simulated I/O genuinely leaves the CPU free for the
//! compute stage, which is exactly the overlap PCP exploits.
//!
//! Layers, bottom to top:
//!
//! * [`model`] — [`LatencyModel`]s: [`HddModel`] (seek + rotation + media
//!   rate + write buffer), [`SsdModel`] (access latency, internal-channel
//!   parallelism, erase-penalty writes), [`NullModel`] (no latency).
//! * [`device`] — [`BlockDevice`] trait and [`SimDevice`], an in-memory
//!   sparse backing store behind a per-device service lock (one "disk arm").
//! * [`raid`] — [`Raid0`], striping across k devices with parallel chunk
//!   service, as the paper builds with the Linux `md` driver for S-PPCP.
//! * [`env`](mod@env) + [`sim_env`] / [`std_env`] — the filesystem abstraction the
//!   LSM engine programs against (create/append/read/rename/delete), with a
//!   simulated implementation backed by a [`BlockDevice`] plus extent
//!   allocator, and a real `std::fs` implementation.

pub mod alloc;
pub mod device;
pub mod env;
pub mod fault_env;
pub mod model;
pub mod raid;
pub mod retry;
pub mod sim_env;
pub mod stats;
pub mod std_env;
pub mod trace;

pub use device::{BlockDevice, SimDevice};
pub use env::{Env, RandomReadFile, ReadClass, WritableFile};
pub use fault_env::{FaultEnv, FaultKind, FaultOp, FaultStats};
pub use retry::{is_transient, with_retry, RetryPolicy};
pub use model::{HddModel, IoKind, LatencyModel, NullModel, SsdModel};
pub use raid::Raid0;
pub use sim_env::SimEnv;
pub use stats::{register_device_metrics, DeviceStats};
pub use std_env::StdFsEnv;
pub use trace::{TraceDevice, TraceRecord};

use std::sync::Arc;

/// Shared handle to a block device.
pub type DeviceRef = Arc<dyn BlockDevice>;

/// Shared handle to a filesystem environment.
pub type EnvRef = Arc<dyn Env>;
