//! First-fit extent allocator with free-list coalescing.
//!
//! [`crate::SimEnv`] uses this to place file segments on the block device.
//! Because files are created and deleted continually (SSTables come and go
//! with every compaction), allocations fragment over time — which is
//! precisely the paper's observation that "the SSTables are dynamically
//! allocated; as a result the data can not be placed on disk sequentially",
//! the source of HDD seek overhead during compaction reads.

use std::collections::BTreeMap;

/// A contiguous byte range on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    pub offset: u64,
    pub len: u64,
}

impl Extent {
    pub fn end(&self) -> u64 {
        self.offset + self.len
    }
}

/// Allocation failure: the device is full (or too fragmented for the
/// requested contiguous extent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfSpace {
    pub requested: u64,
    pub largest_free: u64,
}

impl std::fmt::Display for OutOfSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of space: requested {} contiguous bytes, largest free extent {}",
            self.requested, self.largest_free
        )
    }
}

impl std::error::Error for OutOfSpace {}

/// First-fit allocator over `[0, capacity)`.
#[derive(Debug)]
pub struct ExtentAllocator {
    /// Free extents keyed by offset; invariant: non-empty entries, no two
    /// adjacent entries touch (always coalesced), values are lengths.
    free: BTreeMap<u64, u64>,
    capacity: u64,
    allocated: u64,
}

impl ExtentAllocator {
    /// Creates an allocator managing `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        let mut free = BTreeMap::new();
        if capacity > 0 {
            free.insert(0, capacity);
        }
        ExtentAllocator {
            free,
            capacity,
            allocated: 0,
        }
    }

    /// Total managed capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Allocates `len` contiguous bytes, first-fit.
    pub fn allocate(&mut self, len: u64) -> Result<Extent, OutOfSpace> {
        assert!(len > 0, "zero-length allocation");
        let found = self
            .free
            .iter()
            .find(|(_, &flen)| flen >= len)
            .map(|(&off, &flen)| (off, flen));
        match found {
            Some((off, flen)) => {
                self.free.remove(&off);
                if flen > len {
                    self.free.insert(off + len, flen - len);
                }
                self.allocated += len;
                Ok(Extent { offset: off, len })
            }
            None => Err(OutOfSpace {
                requested: len,
                largest_free: self.free.values().copied().max().unwrap_or(0),
            }),
        }
    }

    /// Returns an extent to the free pool, coalescing with neighbours.
    ///
    /// # Panics
    /// Panics (in debug builds) on overlapping or out-of-range frees, which
    /// indicate allocator misuse.
    pub fn free(&mut self, extent: Extent) {
        if extent.len == 0 {
            return;
        }
        debug_assert!(extent.end() <= self.capacity, "free beyond capacity");
        let mut off = extent.offset;
        let mut len = extent.len;

        // Coalesce with the predecessor if it touches.
        if let Some((&poff, &plen)) = self.free.range(..off).next_back() {
            debug_assert!(poff + plen <= off, "double free (predecessor overlap)");
            if poff + plen == off {
                self.free.remove(&poff);
                off = poff;
                len += plen;
            }
        }
        // Coalesce with the successor if it touches.
        if let Some((&soff, &slen)) = self.free.range(off + len..).next() {
            if soff == off + len {
                self.free.remove(&soff);
                len += slen;
            }
        }
        debug_assert!(
            self.free.range(off..off + len).next().is_none(),
            "double free (range overlap)"
        );
        self.free.insert(off, len);
        self.allocated = self.allocated.saturating_sub(extent.len);
    }

    /// Number of fragments in the free list (fragmentation metric).
    pub fn free_fragments(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_first_fit_in_order() {
        let mut a = ExtentAllocator::new(1000);
        let e1 = a.allocate(100).unwrap();
        let e2 = a.allocate(200).unwrap();
        assert_eq!(e1, Extent { offset: 0, len: 100 });
        assert_eq!(e2, Extent { offset: 100, len: 200 });
        assert_eq!(a.allocated(), 300);
    }

    #[test]
    fn freeing_coalesces_both_sides() {
        let mut a = ExtentAllocator::new(300);
        let e1 = a.allocate(100).unwrap();
        let e2 = a.allocate(100).unwrap();
        let e3 = a.allocate(100).unwrap();
        a.free(e1);
        a.free(e3);
        assert_eq!(a.free_fragments(), 2);
        a.free(e2); // merges with both neighbours
        assert_eq!(a.free_fragments(), 1);
        assert_eq!(a.allocated(), 0);
        // The whole range is allocatable again.
        assert_eq!(a.allocate(300).unwrap(), Extent { offset: 0, len: 300 });
    }

    #[test]
    fn out_of_space_reports_largest_fragment() {
        let mut a = ExtentAllocator::new(300);
        let e1 = a.allocate(100).unwrap();
        let _e2 = a.allocate(100).unwrap();
        let _e3 = a.allocate(100).unwrap();
        a.free(e1);
        let err = a.allocate(150).unwrap_err();
        assert_eq!(err.requested, 150);
        assert_eq!(err.largest_free, 100);
    }

    #[test]
    fn reuses_freed_holes() {
        let mut a = ExtentAllocator::new(1000);
        let e1 = a.allocate(100).unwrap();
        let _keep = a.allocate(100).unwrap();
        a.free(e1);
        // First-fit places the next small allocation into the hole.
        let e = a.allocate(50).unwrap();
        assert_eq!(e.offset, 0);
    }

    #[test]
    fn fragmentation_accumulates_under_churn() {
        let mut a = ExtentAllocator::new(1 << 20);
        let mut live = Vec::new();
        // Alternate alloc/free in a pattern that leaves holes.
        for i in 0..100 {
            let e = a.allocate(1000 + (i % 7) * 64).unwrap();
            if i % 3 == 0 {
                a.free(e);
            } else {
                live.push(e);
            }
        }
        assert!(a.allocated() > 0);
        // Invariant: everything still allocatable after freeing all.
        for e in live {
            a.free(e);
        }
        assert_eq!(a.allocated(), 0);
        assert_eq!(a.free_fragments(), 1, "full coalescing restores one extent");
    }

    #[test]
    fn zero_capacity_always_fails() {
        let mut a = ExtentAllocator::new(0);
        assert!(a.allocate(1).is_err());
    }
}
