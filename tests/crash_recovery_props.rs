//! Crash-recovery fault injection: truncate the WAL at an arbitrary byte
//! (simulating a crash mid-append) and verify the engine recovers exactly
//! the committed prefix of writes — never garbage, never a suffix without
//! its prefix. A second property tears the MANIFEST mid-sync through
//! [`FaultEnv`] and checks that reopening the frozen image recovers a
//! consistent state containing every successfully flushed batch.

use pcp::lsm::{Db, Options};
use pcp::storage::{EnvRef, FaultEnv, FaultKind, FaultOp, SimDevice, SimEnv};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn mem_env() -> EnvRef {
    Arc::new(SimEnv::new(Arc::new(SimDevice::mem(512 << 20))))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn truncated_wal_recovers_a_committed_prefix(
        n_writes in 10u64..400,
        cut_fraction in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let env = mem_env();
        // Phase 1: write without any flush (everything lives in the WAL).
        let writes: Vec<(Vec<u8>, Vec<u8>)> = {
            let db = Db::open(Arc::clone(&env), Options::default()).unwrap();
            let mut writes = Vec::new();
            let mut x = seed | 1;
            for i in 0..n_writes {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let k = format!("key{:04}", x % 500).into_bytes();
                let v = format!("value-{i}").into_bytes();
                db.put(&k, &v).unwrap();
                writes.push((k, v));
            }
            writes
            // Drop = crash without flush.
        };

        // Phase 2: find the live WAL and truncate it at an arbitrary byte.
        let wal_name = {
            let mut logs: Vec<String> = env
                .list()
                .unwrap()
                .into_iter()
                .filter(|n| n.ends_with(".log"))
                .collect();
            logs.sort();
            logs.pop().unwrap()
        };
        let f = env.open(&wal_name).unwrap();
        let full = f.read_at(0, f.len() as usize).unwrap();
        let cut = (full.len() as f64 * cut_fraction) as usize;
        let mut w = env.create(&wal_name).unwrap();
        w.append(&full[..cut]).unwrap();
        w.sync().unwrap();
        drop(w);

        // Phase 3: recover. The state must equal replaying some prefix of
        // the original writes.
        let db = Db::open(env, Options::default()).unwrap();
        let mut it = db.iter();
        it.seek_to_first();
        let mut recovered = BTreeMap::new();
        while it.valid() {
            recovered.insert(it.key().to_vec(), it.value().to_vec());
            it.next();
        }
        // Compute all prefix states and check the recovered state is one.
        let mut state: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut matched = recovered.is_empty();
        for (k, v) in &writes {
            state.insert(k.clone(), v.clone());
            if state == recovered {
                matched = true;
                break;
            }
        }
        prop_assert!(
            matched,
            "recovered state ({} keys) is not any committed prefix of {} writes",
            recovered.len(),
            writes.len()
        );
    }

    /// Tear the MANIFEST on its `nth` sync (power cut mid-write). The
    /// frozen image must reopen cleanly, every batch whose flush was
    /// acknowledged before the tear must survive, and nothing recovered
    /// may be a value we never wrote.
    #[test]
    fn torn_manifest_sync_preserves_flushed_data(
        n_batches in 2u64..8,
        nth_sync in 1u64..8,
        seed in any::<u64>(),
    ) {
        let inner = mem_env();
        let fault = FaultEnv::new(Arc::clone(&inner), seed);
        fault.schedule_on_file(FaultOp::Sync, nth_sync, FaultKind::TornSync, "MANIFEST");
        let env: EnvRef = Arc::new(fault.clone());

        let mut written: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut durable: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        // Db::open itself syncs the MANIFEST, so an early trigger can tear
        // before the database even exists — recovery then starts fresh.
        if let Ok(db) = Db::open(Arc::clone(&env), Options::default()) {
            'batches: for b in 0..n_batches {
                let mut batch = BTreeMap::new();
                for i in 0..40u64 {
                    let k = format!("b{b:02}k{i:03}").into_bytes();
                    let v = format!("val-{b}-{i}").into_bytes();
                    if db.put(&k, &v).is_err() {
                        break 'batches;
                    }
                    written.insert(k.clone(), v.clone());
                    batch.insert(k, v);
                }
                if db.flush().is_err() {
                    break 'batches;
                }
                // Flush acknowledged: the table and its MANIFEST record
                // are on the inner image, so this batch must survive.
                durable.append(&mut batch);
            }
            // Drop with a possibly latched error / frozen filesystem:
            // shutdown must neither panic nor hang.
        }

        // Reopen the frozen image directly. Recovery must tolerate the
        // torn MANIFEST tail.
        let db = Db::open(Arc::clone(&inner), Options::default()).unwrap();
        let report = db.verify_integrity().unwrap();
        prop_assert!(report.is_healthy(), "integrity errors: {:?}", report.errors);
        let mut it = db.iter();
        it.seek_to_first();
        let mut recovered = BTreeMap::new();
        while it.valid() {
            recovered.insert(it.key().to_vec(), it.value().to_vec());
            it.next();
        }
        for (k, v) in &durable {
            prop_assert_eq!(
                recovered.get(k),
                Some(v),
                "flushed key {:?} lost after torn MANIFEST",
                String::from_utf8_lossy(k)
            );
        }
        for (k, v) in &recovered {
            prop_assert_eq!(
                written.get(k),
                Some(v),
                "recovered a value never written for key {:?}",
                String::from_utf8_lossy(k)
            );
        }
    }
}
