//! Crash-recovery fault injection: truncate the WAL at an arbitrary byte
//! (simulating a crash mid-append) and verify the engine recovers exactly
//! the committed prefix of writes — never garbage, never a suffix without
//! its prefix.

use pcp::lsm::{Db, Options};
use pcp::storage::{EnvRef, SimDevice, SimEnv};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn mem_env() -> EnvRef {
    Arc::new(SimEnv::new(Arc::new(SimDevice::mem(512 << 20))))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn truncated_wal_recovers_a_committed_prefix(
        n_writes in 10u64..400,
        cut_fraction in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let env = mem_env();
        // Phase 1: write without any flush (everything lives in the WAL).
        let writes: Vec<(Vec<u8>, Vec<u8>)> = {
            let db = Db::open(Arc::clone(&env), Options::default()).unwrap();
            let mut writes = Vec::new();
            let mut x = seed | 1;
            for i in 0..n_writes {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let k = format!("key{:04}", x % 500).into_bytes();
                let v = format!("value-{i}").into_bytes();
                db.put(&k, &v).unwrap();
                writes.push((k, v));
            }
            writes
            // Drop = crash without flush.
        };

        // Phase 2: find the live WAL and truncate it at an arbitrary byte.
        let wal_name = {
            let mut logs: Vec<String> = env
                .list()
                .unwrap()
                .into_iter()
                .filter(|n| n.ends_with(".log"))
                .collect();
            logs.sort();
            logs.pop().unwrap()
        };
        let f = env.open(&wal_name).unwrap();
        let full = f.read_at(0, f.len() as usize).unwrap();
        let cut = (full.len() as f64 * cut_fraction) as usize;
        let mut w = env.create(&wal_name).unwrap();
        w.append(&full[..cut]).unwrap();
        w.sync().unwrap();
        drop(w);

        // Phase 3: recover. The state must equal replaying some prefix of
        // the original writes.
        let db = Db::open(env, Options::default()).unwrap();
        let mut it = db.iter();
        it.seek_to_first();
        let mut recovered = BTreeMap::new();
        while it.valid() {
            recovered.insert(it.key().to_vec(), it.value().to_vec());
            it.next();
        }
        // Compute all prefix states and check the recovered state is one.
        let mut state: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut matched = recovered.is_empty();
        for (k, v) in &writes {
            state.insert(k.clone(), v.clone());
            if state == recovered {
                matched = true;
                break;
            }
        }
        prop_assert!(
            matched,
            "recovered state ({} keys) is not any committed prefix of {} writes",
            recovered.len(),
            writes.len()
        );
    }
}
