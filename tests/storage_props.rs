//! Property tests of the storage substrate: the simulated filesystem
//! behaves like an in-memory map of named byte strings, and RAID0 is a
//! faithful byte store under arbitrary request patterns.

use pcp::storage::{BlockDevice, DeviceRef, Env, Raid0, SimDevice, SimEnv};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum FsOp {
    Create(u8, Vec<u8>),
    Append(u8, Vec<u8>),
    Delete(u8),
    Rename(u8, u8),
}

fn fs_op_strategy() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..300))
            .prop_map(|(n, d)| FsOp::Create(n % 8, d)),
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..300))
            .prop_map(|(n, d)| FsOp::Append(n % 8, d)),
        any::<u8>().prop_map(|n| FsOp::Delete(n % 8)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| FsOp::Rename(a % 8, b % 8)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn sim_env_matches_model_fs(ops in prop::collection::vec(fs_op_strategy(), 0..60)) {
        let env = SimEnv::new(Arc::new(SimDevice::mem(64 << 20)));
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                FsOp::Create(n, data) => {
                    let name = format!("f{n}");
                    let mut f = env.create(&name).unwrap();
                    f.append(&data).unwrap();
                    f.sync().unwrap();
                    model.insert(name, data);
                }
                FsOp::Append(n, data) => {
                    let name = format!("f{n}");
                    // Env has no append-to-existing; emulate by rewrite.
                    let mut contents = model.get(&name).cloned().unwrap_or_default();
                    contents.extend_from_slice(&data);
                    let mut f = env.create(&name).unwrap();
                    f.append(&contents).unwrap();
                    f.sync().unwrap();
                    model.insert(name, contents);
                }
                FsOp::Delete(n) => {
                    let name = format!("f{n}");
                    let r = env.delete(&name);
                    prop_assert_eq!(r.is_ok(), model.remove(&name).is_some());
                }
                FsOp::Rename(a, b) => {
                    let from = format!("f{a}");
                    let to = format!("f{b}");
                    let r = env.rename(&from, &to);
                    match model.remove(&from) {
                        Some(data) => {
                            prop_assert!(r.is_ok());
                            model.insert(to, data);
                        }
                        None => prop_assert!(r.is_err()),
                    }
                }
            }
        }
        // Final state comparison.
        let mut names = env.list().unwrap();
        names.sort();
        let mut want: Vec<String> = model.keys().cloned().collect();
        want.sort();
        prop_assert_eq!(names, want);
        for (name, data) in &model {
            let f = env.open(name).unwrap();
            prop_assert_eq!(f.len(), data.len() as u64);
            let got = f.read_at(0, data.len()).unwrap();
            prop_assert_eq!(&got[..], data.as_slice());
        }
    }

    #[test]
    fn raid0_is_a_faithful_byte_store(
        width in 1usize..5,
        stripe_kb in 1u64..8,
        writes in prop::collection::vec(
            (0u64..(1 << 20), prop::collection::vec(any::<u8>(), 1..2000)),
            1..20
        ),
    ) {
        let members: Vec<DeviceRef> = (0..width)
            .map(|_| Arc::new(SimDevice::mem(4 << 20)) as DeviceRef)
            .collect();
        let raid = Raid0::new("r", members, stripe_kb << 10);
        let mut model = vec![0u8; 1 << 21];
        for (offset, data) in &writes {
            raid.write_at(*offset, data).unwrap();
            model[*offset as usize..*offset as usize + data.len()]
                .copy_from_slice(data);
        }
        for (offset, data) in &writes {
            // Read back a window around each write (checks striping math
            // and neighbours).
            let start = offset.saturating_sub(100);
            let len = data.len() + 200;
            let got = raid.read_at(start, len).unwrap();
            prop_assert_eq!(
                &got[..],
                &model[start as usize..start as usize + len],
                "window at {}", start
            );
        }
    }
}
