//! End-to-end observability: a real engine run under the paper's
//! executors, with the registry, occupancy gauges, trace log, Prometheus
//! exposition, and JSON snapshot all checked against each other.
//!
//! The metric contract these tests pin down is documented in
//! `OBSERVABILITY.md`; the occupancy quantity is the paper's Fig. 5
//! busy-time fraction per resource (read | compute | write).

use pcp::core::{PipelinedExec, ScpExec, Step};
use pcp::lsm::{CompactionExec, CompactionPolicy, Db, Options};
use pcp::obs::{Registry, SampleValue, TraceLog};
use pcp::storage::{register_device_metrics, DeviceRef, EnvRef, SimDevice, SimEnv};
use std::sync::Arc;

fn small_opts(executor: Arc<dyn CompactionExec>) -> Options {
    Options {
        memtable_bytes: 64 << 10,
        sstable_bytes: 32 << 10,
        policy: CompactionPolicy {
            l0_trigger: 4,
            base_level_bytes: 128 << 10,
            level_multiplier: 10,
        },
        executor,
        ..Default::default()
    }
}

/// Enough writes to force several flushes and at least one merge
/// compaction under `small_opts`.
fn drive(db: &Db) {
    for i in 0..6000u64 {
        let key = format!("key{:05}", i % 2500).into_bytes();
        let value = format!("value-{i}-{}", "x".repeat((i % 80) as usize)).into_bytes();
        db.put(&key, &value).unwrap();
    }
    db.wait_idle().unwrap();
    db.compact_range(None, None).unwrap();
}

/// SCP runs its seven steps strictly sequentially, so per-resource
/// busy-time fractions must each be nonzero and sum to at most 1.0 of
/// the compaction wall time.
#[test]
fn scp_compaction_has_nonzero_busy_time_in_all_three_stages() {
    let exec = Arc::new(ScpExec::new(16 << 10));
    let profile = exec.profile();
    let env: EnvRef = Arc::new(SimEnv::new(Arc::new(SimDevice::mem(2 << 30))));
    let db = Db::open(env, small_opts(exec)).unwrap();
    drive(&db);

    let snap = profile.snapshot();
    assert!(snap.compactions > 0, "workload must compact");
    for stage in [Step::Read, Step::Sort, Step::Write] {
        assert!(
            snap.time(stage) > std::time::Duration::ZERO,
            "stage {} has zero busy time",
            stage.label()
        );
    }
    let occ = snap.occupancy();
    assert!(occ.read > 0.0 && occ.compute > 0.0 && occ.write > 0.0);
    assert!(
        occ.read + occ.compute + occ.write <= 1.0 + 1e-6,
        "sequential executor busier than wall time: {:.3}+{:.3}+{:.3}",
        occ.read,
        occ.compute,
        occ.write
    );
}

/// PCP overlaps the stages, so each resource's fraction is individually
/// bounded by 1.0 (but their sum may exceed 1.0 — that overlap is the
/// paper's speedup). The last-compaction occupancy is also published
/// through the registry gauges.
#[test]
fn pipelined_occupancy_published_through_registry() {
    let trace = Arc::new(TraceLog::new(512));
    let exec = Arc::new(PipelinedExec::pcp(16 << 10).with_trace(Arc::clone(&trace)));
    let profile = exec.profile();
    let env: EnvRef = Arc::new(SimEnv::new(Arc::new(SimDevice::mem(2 << 30))));
    let db = Db::open(env, small_opts(exec)).unwrap();
    drive(&db);

    let registry = Registry::new();
    profile.register_metrics(&registry, "pcp");
    let snap = registry.snapshot();

    // All three stage accumulators crossed the wire into the registry.
    for step in ["read", "sort", "write"] {
        assert!(
            snap.counter(
                "pcp_compaction_step_busy_nanoseconds_total",
                &[("exec", "pcp"), ("step", step)]
            ) > 0,
            "registry shows zero busy time for step {step}"
        );
    }
    // Last-compaction occupancy gauges: each in (0, 1].
    for stage in ["read", "compute", "write"] {
        let frac = snap.gauge(
            "pcp_compaction_last_occupancy",
            &[("exec", "pcp"), ("stage", stage)],
        );
        assert!(
            frac > 0.0 && frac <= 1.0,
            "stage {stage} occupancy {frac} out of (0,1]"
        );
    }
    assert!(snap.counter("pcp_compactions_total", &[("exec", "pcp")]) > 0);

    // The executor's trace recorded start/done pairs with ppm occupancy.
    let events = trace.events();
    let starts = events.iter().filter(|e| e.kind == "compaction_start").count();
    let dones: Vec<_> = events
        .iter()
        .filter(|e| e.kind == "compaction_done")
        .collect();
    assert!(starts > 0 && !dones.is_empty());
    let last = dones.last().unwrap();
    for field in ["read_busy_ppm", "compute_busy_ppm", "write_busy_ppm"] {
        let ppm = last
            .fields
            .iter()
            .find(|(k, _)| *k == field)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("compaction_done missing {field}"));
        assert!(ppm > 0 && ppm <= 1_000_000, "{field} = {ppm}");
    }
}

/// One registry carries the whole stack — device, engine, executor —
/// and both renderings (Prometheus text, JSON) stay self-consistent.
#[test]
fn full_stack_registry_renders_and_validates() {
    let device: DeviceRef = Arc::new(SimDevice::mem(2 << 30));
    let env: EnvRef = Arc::new(SimEnv::new(Arc::clone(&device)));
    let exec = Arc::new(PipelinedExec::pcp(16 << 10));
    let profile = exec.profile();
    let db = Db::open(env, small_opts(exec)).unwrap();

    let registry = Registry::new();
    register_device_metrics(&registry, "mem0", &device);
    db.register_metrics(&registry, &[("shard", "0")]);
    profile.register_metrics(&registry, "pcp");

    drive(&db);

    // Prometheus text: every line parses, and the stack's three layers
    // are all represented.
    let text = registry.render_prometheus();
    let n = pcp::obs::validate_exposition(&text).unwrap();
    assert!(n > 40, "only {n} samples rendered");
    for series in [
        "pcp_device_write_bytes_total",
        "pcp_engine_flushes_total",
        "pcp_compaction_step_busy_nanoseconds_total",
    ] {
        assert!(text.contains(series), "exposition missing {series}");
    }

    // Cross-layer sanity: device bytes written >= engine flush bytes
    // (flushes go through the device, plus WAL and compaction traffic).
    let snap = registry.snapshot();
    let device_written = snap.counter("pcp_device_write_bytes_total", &[("device", "mem0")]);
    let flush_bytes = snap.counter("pcp_engine_flush_bytes_total", &[("shard", "0")]);
    assert!(flush_bytes > 0);
    assert!(
        device_written >= flush_bytes,
        "device wrote {device_written} < flush bytes {flush_bytes}"
    );

    // Latency histograms carried samples.
    match &snap
        .get_with("pcp_device_write_latency_nanoseconds", &[("device", "mem0")])
        .unwrap()
        .value
    {
        SampleValue::Histogram(h) => assert!(h.count > 0),
        other => panic!("expected histogram, got {other:?}"),
    }

    // JSON snapshot is structurally balanced and mentions each layer.
    let json = snap.to_json();
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced JSON"
    );
    assert!(json.contains("\"pcp_device_read_ops_total\""));
    assert!(json.contains("\"pcp_engine_puts_total\""));
    assert!(json.contains("\"pcp_compaction_last_occupancy\""));

    // The engine's own trace saw the lifecycle.
    let kinds: Vec<&str> = db.trace().events().iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&"flush_done"), "kinds: {kinds:?}");
    assert!(
        kinds.contains(&"compaction_installed") || kinds.contains(&"trivial_move"),
        "kinds: {kinds:?}"
    );
}
