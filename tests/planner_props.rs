//! Property tests of the sub-task planner over real tables with arbitrary
//! key layouts: the plan must cover every block exactly once, keep
//! sub-key ranges disjoint, and never split a user key.

use pcp::core::{check_plan, plan_subtasks};
use pcp::sstable::key::{make_internal_key, ValueType};
use pcp::sstable::{TableBuilder, TableBuilderOptions, TableReader};
use pcp::storage::{EnvRef, SimDevice, SimEnv};
use proptest::prelude::*;
use std::sync::Arc;

fn mem_env() -> EnvRef {
    Arc::new(SimEnv::new(Arc::new(SimDevice::mem(256 << 20))))
}

/// Builds a run from (key_byte, versions) specs; returns its block metas.
fn run_from_keys(env: &EnvRef, name: &str, keys: &[(u8, u8)], seq0: u64) -> Vec<pcp::sstable::table::BlockMeta> {
    let mut entries: Vec<(Vec<u8>, u64)> = Vec::new();
    let mut seq = seq0;
    let mut sorted: Vec<(u8, u8)> = keys.to_vec();
    sorted.sort();
    sorted.dedup_by_key(|(k, _)| *k);
    for (k, versions) in sorted {
        for _ in 0..=(versions % 4) {
            entries.push((format!("key{:03}", k).into_bytes(), seq));
            seq += 1;
        }
    }
    if entries.is_empty() {
        return Vec::new();
    }
    let mut ikeys: Vec<Vec<u8>> = entries
        .iter()
        .map(|(k, s)| make_internal_key(k, *s, ValueType::Value))
        .collect();
    ikeys.sort_by(|a, b| pcp::sstable::internal_key_cmp(a, b));
    let f = env.create(name).unwrap();
    // Tiny blocks force many block boundaries, including mid-user-key.
    let mut b = TableBuilder::new(
        f,
        TableBuilderOptions {
            block_size: 64,
            ..Default::default()
        },
    );
    for ik in &ikeys {
        b.add(ik, b"some-value-payload").unwrap();
    }
    b.finish().unwrap();
    let reader = TableReader::open(env.open(name).unwrap()).unwrap();
    reader.block_metas().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn plan_invariants_hold_for_arbitrary_layouts(
        upper_keys in prop::collection::vec((any::<u8>(), any::<u8>()), 0..60),
        lower_keys in prop::collection::vec((any::<u8>(), any::<u8>()), 0..120),
        target_kb in 1u64..64,
    ) {
        let env = mem_env();
        let runs = vec![
            run_from_keys(&env, "u.sst", &upper_keys, 100_000),
            run_from_keys(&env, "l.sst", &lower_keys, 1),
        ];
        let plan = plan_subtasks(&runs, target_kb << 10);
        prop_assert!(check_plan(&runs, &plan).is_ok(), "{:?}", check_plan(&runs, &plan));
        let total_blocks: usize = runs.iter().map(|r| r.len()).sum();
        let planned_blocks: usize = plan.iter().map(|s| s.block_count()).sum();
        prop_assert_eq!(total_blocks, planned_blocks);
    }

    #[test]
    fn three_overlapping_runs_plan_correctly(
        seeds in prop::collection::vec(prop::collection::vec((any::<u8>(), any::<u8>()), 1..40), 3..4),
        target_kb in 1u64..32,
    ) {
        let env = mem_env();
        let runs: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(i, keys)| run_from_keys(&env, &format!("t{i}.sst"), keys, 1 + i as u64 * 100_000))
            .collect();
        let plan = plan_subtasks(&runs, target_kb << 10);
        prop_assert!(check_plan(&runs, &plan).is_ok(), "{:?}", check_plan(&runs, &plan));
    }
}
