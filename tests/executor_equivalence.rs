//! The reproduction's central correctness property: every compaction
//! procedure — SCP, PCP, C-PPCP, S-PPCP, and the engine's entry-level
//! reference — produces the same logical output for the same input.

use pcp::core::{AdaptiveConfig, AdaptiveExec, PipelineConfig, PipelinedExec, ScpExec};
use pcp::lsm::filename::table_file;
use pcp::lsm::{CompactionExec, CompactionRequest, SimpleMergeExec};
use pcp::sstable::key::{make_internal_key, ValueType, MAX_SEQUENCE};
use pcp::sstable::{KvIter, TableBuilder, TableBuilderOptions, TableReader};
use pcp::storage::{EnvRef, SimDevice, SimEnv};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

type Entry = (Vec<u8>, u64, ValueType, Vec<u8>);

fn mem_env() -> EnvRef {
    Arc::new(SimEnv::new(Arc::new(SimDevice::mem(1 << 30))))
}

fn build_table(env: &EnvRef, name: &str, entries: &[Entry]) -> Option<Arc<TableReader>> {
    if entries.is_empty() {
        return None;
    }
    let mut sorted: Vec<(Vec<u8>, Vec<u8>)> = entries
        .iter()
        .map(|(k, seq, t, v)| (make_internal_key(k, *seq, *t), v.clone()))
        .collect();
    sorted.sort_by(|a, b| pcp::sstable::internal_key_cmp(&a.0, &b.0));
    sorted.dedup_by(|a, b| a.0 == b.0);
    let f = env.create(name).unwrap();
    let mut b = TableBuilder::new(f, TableBuilderOptions::default());
    for (ik, v) in &sorted {
        b.add(ik, v).unwrap();
    }
    b.finish().unwrap();
    Some(Arc::new(
        TableReader::open(env.open(name).unwrap()).unwrap(),
    ))
}

fn run_compaction(
    exec: &dyn CompactionExec,
    upper_entries: &[Entry],
    lower_entries: &[Entry],
    smallest_snapshot: u64,
    bottom: bool,
    subtask_note: &str,
) -> Vec<(Vec<u8>, Vec<u8>)> {
    let env = mem_env();
    let upper = build_table(&env, "u.sst", upper_entries);
    let lower = build_table(&env, "l.sst", lower_entries);
    let req = CompactionRequest {
        env: Arc::clone(&env),
        upper: upper.into_iter().collect(),
        lower: lower.into_iter().collect(),
        output_level: 1,
        bottom_level: bottom,
        smallest_snapshot,
        file_numbers: Arc::new(AtomicU64::new(100)),
        table_opts: TableBuilderOptions::default(),
        max_output_bytes: 32 << 10,
        grant: pcp_lsm::ResourceGrant::unlimited(),
    };
    let outputs = exec
        .compact(&req)
        .unwrap_or_else(|e| panic!("{subtask_note}: {e}"));
    let mut all = Vec::new();
    for meta in outputs {
        let t = Arc::new(
            TableReader::open(env.open(&table_file(meta.number)).unwrap()).unwrap(),
        );
        let mut it = t.iter();
        it.seek_to_first();
        while it.valid() {
            all.push((it.key().to_vec(), it.value().to_vec()));
            it.next();
        }
    }
    all
}

/// Strategy: up to 300 entries with small key space (forces version
/// chains), mixed puts/deletes, unique sequences.
fn entries_strategy(seq_base: u64) -> impl Strategy<Value = Vec<Entry>> {
    prop::collection::vec(
        (
            prop::num::u8::ANY,
            prop::bool::ANY,
            prop::collection::vec(prop::num::u8::ANY, 0..40),
        ),
        0..300,
    )
    .prop_map(move |raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (key_byte, is_delete, value))| {
                (
                    format!("key{:03}", key_byte).into_bytes(),
                    seq_base + i as u64,
                    if is_delete {
                        ValueType::Deletion
                    } else {
                        ValueType::Value
                    },
                    value,
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn all_executors_agree_with_reference(
        upper in entries_strategy(10_000),
        lower in entries_strategy(1),
        snapshot_sel in 0u8..3,
        bottom in prop::bool::ANY,
    ) {
        let snapshot = match snapshot_sel {
            0 => MAX_SEQUENCE,
            1 => 10_050, // between the components' sequence ranges
            _ => 150,    // inside lower's range
        };
        let reference = run_compaction(
            &SimpleMergeExec,
            &upper,
            &lower,
            snapshot,
            bottom,
            "reference",
        );
        for (name, exec) in [
            ("scp", Box::new(ScpExec::new(2 << 10)) as Box<dyn CompactionExec>),
            ("pcp", Box::new(PipelinedExec::pcp(2 << 10))),
            ("c-ppcp", Box::new(PipelinedExec::c_ppcp(2 << 10, 3))),
            ("s-ppcp", Box::new(PipelinedExec::s_ppcp(2 << 10, 2))),
            (
                "tight-queue",
                Box::new(PipelinedExec::new(PipelineConfig {
                    subtask_bytes: 1 << 10,
                    compute_workers: 2,
                    read_workers: 2,
                    queue_depth: 1,
                    deep_compute: false,
                })),
            ),
            (
                "pcp-deep",
                Box::new(PipelinedExec::new(PipelineConfig {
                    subtask_bytes: 2 << 10,
                    deep_compute: true,
                    ..Default::default()
                })),
            ),
            (
                // Straddles the small-job threshold: some generated inputs
                // take the simple-merge path, the rest a pipelined shape —
                // the shape switch itself must be invisible in the output.
                "adaptive",
                Box::new(AdaptiveExec::new(AdaptiveConfig {
                    subtask_bytes: 2 << 10,
                    small_job_bytes: 4 << 10,
                    ..AdaptiveConfig::default()
                })),
            ),
        ] {
            let got = run_compaction(&*exec, &upper, &lower, snapshot, bottom, name);
            prop_assert_eq!(
                &got, &reference,
                "{} diverged from reference ({} vs {} entries)",
                name, got.len(), reference.len()
            );
        }
    }
}

#[test]
fn executors_agree_on_large_structured_input() {
    // A deterministic larger case: 5k entries, heavy overwrites, deletes.
    let mut upper = Vec::new();
    let mut lower = Vec::new();
    for i in 0..5000u64 {
        lower.push((
            format!("key{:06}", i % 2500).into_bytes(),
            i + 1,
            ValueType::Value,
            format!("old{i}").into_bytes(),
        ));
    }
    for i in 0..2000u64 {
        let t = if i % 5 == 0 {
            ValueType::Deletion
        } else {
            ValueType::Value
        };
        upper.push((
            format!("key{:06}", (i * 3) % 2500).into_bytes(),
            100_000 + i,
            t,
            format!("new{i}").into_bytes(),
        ));
    }
    let reference =
        run_compaction(&SimpleMergeExec, &upper, &lower, MAX_SEQUENCE, true, "ref");
    // The reference must have collapsed versions.
    assert!(reference.len() <= 2500);
    for exec in [
        Box::new(ScpExec::new(8 << 10)) as Box<dyn CompactionExec>,
        Box::new(PipelinedExec::pcp(8 << 10)),
        Box::new(PipelinedExec::c_ppcp(8 << 10, 4)),
    ] {
        let got = run_compaction(&*exec, &upper, &lower, MAX_SEQUENCE, true, exec.name());
        assert_eq!(got, reference, "{} diverged", exec.name());
    }
}

#[test]
fn model_check_merge_semantics_against_btreemap() {
    // Reference executor vs an oracle BTreeMap replay.
    let mut upper = Vec::new();
    let mut lower = Vec::new();
    let mut oracle: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
    // Lower applied first (older), then upper.
    for i in 0..1000u64 {
        let k = format!("k{:04}", (i * 7) % 500).into_bytes();
        let v = format!("L{i}").into_bytes();
        lower.push((k.clone(), i + 1, ValueType::Value, v.clone()));
    }
    for (k, _, _, v) in &lower {
        oracle.insert(k.clone(), Some(v.clone()));
    }
    for i in 0..400u64 {
        let k = format!("k{:04}", (i * 13) % 500).into_bytes();
        if i % 3 == 0 {
            upper.push((k.clone(), 10_000 + i, ValueType::Deletion, Vec::new()));
            oracle.insert(k, None);
        } else {
            let v = format!("U{i}").into_bytes();
            upper.push((k.clone(), 10_000 + i, ValueType::Value, v.clone()));
            oracle.insert(k, Some(v));
        }
    }
    let got = run_compaction(&PipelinedExec::pcp(4 << 10), &upper, &lower, MAX_SEQUENCE, true, "pcp");
    let got_map: BTreeMap<Vec<u8>, Vec<u8>> = got
        .into_iter()
        .map(|(ik, v)| {
            let p = pcp::sstable::parse_internal_key(&ik).unwrap();
            assert_eq!(p.value_type, ValueType::Value, "no tombstones at bottom");
            (p.user_key.to_vec(), v)
        })
        .collect();
    let want: BTreeMap<Vec<u8>, Vec<u8>> = oracle
        .into_iter()
        .filter_map(|(k, v)| v.map(|v| (k, v)))
        .collect();
    assert_eq!(got_map, want);
}
