//! The adaptive-default production path end to end: the cross-shard
//! resource scheduler's token invariant under real 8-shard concurrency,
//! deterministic shape selection, scheduler observability, and
//! byte-for-byte equivalence of an adaptive-default database against the
//! reference simple-merge executor.

use pcp::core::{AdaptiveConfig, AdaptiveExec, ExecChoice, Occupancy};
use pcp::lsm::{CompactionLimiter, CompactionPolicy, Db, Options, SimpleMergeExec};
use pcp::obs::Registry;
use pcp::shard::{HashRouter, ShardedDb};
use pcp::storage::{EnvRef, SimDevice, SimEnv};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn mem_env() -> EnvRef {
    Arc::new(SimEnv::new(Arc::new(SimDevice::mem(2 << 30))))
}

fn small_opts() -> Options {
    Options {
        memtable_bytes: 32 << 10,
        sstable_bytes: 16 << 10,
        policy: CompactionPolicy {
            l0_trigger: 2,
            base_level_bytes: 64 << 10,
            level_multiplier: 10,
        },
        ..Default::default()
    }
}

/// Eight shards hammering one scheduler with a stage-token budget smaller
/// than `shards x max_workers`: at no sampled instant may the granted
/// tokens exceed the budget, and everything must drain back to zero.
#[test]
fn sched_token_budget_holds_under_eight_shard_concurrency() {
    const SHARDS: usize = 8;
    let limiter = Arc::new(CompactionLimiter::with_budget(4, 6, Some(64 << 20)));
    let opts = Options {
        compaction_limiter: Some(Arc::clone(&limiter)),
        ..small_opts()
    };
    let envs: Vec<EnvRef> = (0..SHARDS).map(|_| mem_env()).collect();
    let db =
        ShardedDb::open_with_envs(envs, opts, Arc::new(HashRouter::new(SHARDS))).unwrap();

    // Every shard registered a scheduler slot at open.
    assert_eq!(limiter.registered(), SHARDS);
    for i in 0..SHARDS {
        assert!(db.shard(i).scheduler_slot().is_some(), "shard {i} has no slot");
    }

    // Writer threads keep all shards flushing/compacting while a sampler
    // watches the scheduler's books.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let limiter = Arc::clone(&limiter);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut max_seen = 0usize;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let out = limiter.tokens_out();
                assert!(
                    out <= limiter.stage_tokens(),
                    "tokens_out {out} exceeds budget {}",
                    limiter.stage_tokens()
                );
                assert!(
                    limiter.in_use() <= limiter.permits(),
                    "in_use exceeds permits"
                );
                max_seen = max_seen.max(out);
                std::thread::sleep(Duration::from_micros(200));
            }
            max_seen
        })
    };
    std::thread::scope(|s| {
        for t in 0..SHARDS {
            let db = &db;
            s.spawn(move || {
                for i in 0..1500u64 {
                    let key = format!("t{t:02}-key{:05}", i % 400).into_bytes();
                    let value = format!("v{i}-{}", "x".repeat((i % 64) as usize)).into_bytes();
                    db.put(&key, &value).unwrap();
                }
            });
        }
    });
    db.wait_idle().unwrap();
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let max_seen = sampler.join().unwrap();
    assert!(max_seen <= limiter.stage_tokens());

    // Quiesced: every token and permit returned.
    assert_eq!(limiter.tokens_out(), 0, "tokens leaked");
    assert_eq!(limiter.in_use(), 0, "permits leaked");
    assert!(limiter.peak() >= 1, "scheduler never admitted a compaction");
}

/// The shape decision is a pure function of (config, occupancy, input
/// size, token grant): same snapshot in, same choice out — every time.
#[test]
fn adaptive_choice_is_deterministic_for_fixed_snapshot() {
    let cfg = AdaptiveConfig {
        max_workers: 4,
        ..AdaptiveConfig::default()
    };
    let snapshots = [
        // (occupancy, input, tokens) -> expected
        (
            Occupancy {
                read: 0.3,
                compute: 0.95,
                write: 0.4,
                wall: Duration::from_millis(80),
            },
            64 << 20,
            usize::MAX,
            ExecChoice::CPpcp(4),
        ),
        (
            Occupancy {
                read: 0.95,
                compute: 0.3,
                write: 0.2,
                wall: Duration::from_millis(80),
            },
            64 << 20,
            usize::MAX,
            ExecChoice::SPpcp(4),
        ),
        (
            Occupancy {
                read: 0.5,
                compute: 0.5,
                write: 0.9,
                wall: Duration::from_millis(80),
            },
            64 << 20,
            usize::MAX,
            ExecChoice::Pcp,
        ),
        (
            Occupancy {
                read: 0.3,
                compute: 0.95,
                write: 0.4,
                wall: Duration::from_millis(80),
            },
            1 << 20, // small job wins over any occupancy signal
            usize::MAX,
            ExecChoice::Simple,
        ),
        (
            Occupancy {
                read: 0.3,
                compute: 0.95,
                write: 0.4,
                wall: Duration::from_millis(80),
            },
            64 << 20,
            2, // the scheduler's grant caps the parallel width
            ExecChoice::CPpcp(2),
        ),
    ];
    for (occ, input, tokens, want) in snapshots {
        for _ in 0..50 {
            assert_eq!(AdaptiveExec::choose(&cfg, &occ, input, tokens), want);
        }
    }
}

/// The sharded engine's registry carries the full `pcp_sched_*` contract
/// after one registration pass.
#[test]
fn sched_metrics_are_exposed_by_the_sharded_engine() {
    const SHARDS: usize = 2;
    let limiter = Arc::new(CompactionLimiter::with_budget(2, 4, Some(32 << 20)));
    let opts = Options {
        compaction_limiter: Some(Arc::clone(&limiter)),
        ..small_opts()
    };
    let envs: Vec<EnvRef> = (0..SHARDS).map(|_| mem_env()).collect();
    let db =
        ShardedDb::open_with_envs(envs, opts, Arc::new(HashRouter::new(SHARDS))).unwrap();
    for i in 0..400u64 {
        db.put(format!("key{i:05}").as_bytes(), b"value").unwrap();
    }
    db.wait_idle().unwrap();

    let registry = Registry::new();
    db.register_metrics(&registry);
    let text = registry.render_prometheus();
    for series in [
        "pcp_sched_stage_tokens",
        "pcp_sched_tokens_in_use",
        "pcp_sched_bandwidth_budget_bytes_per_sec",
        "pcp_sched_steals_total",
        "pcp_sched_tokens_granted{shard=\"0\"}",
        "pcp_sched_tokens_granted{shard=\"1\"}",
        "pcp_sched_bandwidth_bytes_per_sec{shard=\"0\"}",
        "pcp_sched_debt{shard=\"0\"}",
        "pcp_sched_executor_choice_total{choice=\"simple\"}",
        "pcp_sched_executor_choice_total{choice=\"pcp\"}",
    ] {
        assert!(text.contains(series), "missing series {series} in:\n{text}");
    }
    // The default executor is the adaptive one, and it ran compactions.
    assert_eq!(db.shard(0).executor().name(), "adaptive");
}

/// A database on the adaptive default and one pinned to the reference
/// executor must converge to byte-identical full key/value streams for
/// the same workload — the repo-wide executor-equivalence invariant
/// lifted to the production default.
fn full_stream(db: &Db) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut it = db.iter();
    it.seek_to_first();
    let mut all = Vec::new();
    while it.valid() {
        all.push((it.key().to_vec(), it.value().to_vec()));
        it.next();
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    #[test]
    fn adaptive_default_db_matches_simple_merge_db(
        ops in prop::collection::vec(
            (prop::num::u16::ANY, prop::bool::ANY, 0usize..80),
            200..800,
        ),
    ) {
        let adaptive_opts = Options {
            executor: Arc::new(AdaptiveExec::new(AdaptiveConfig {
                subtask_bytes: 8 << 10,
                small_job_bytes: 16 << 10,
                ..AdaptiveConfig::default()
            })),
            ..small_opts()
        };
        let simple_opts = Options {
            executor: Arc::new(SimpleMergeExec),
            ..small_opts()
        };
        let db_a = Db::open(mem_env(), adaptive_opts).unwrap();
        let db_s = Db::open(mem_env(), simple_opts).unwrap();
        for (kx, is_delete, vlen) in &ops {
            let key = format!("key{:04}", kx % 500).into_bytes();
            if *is_delete {
                db_a.delete(&key).unwrap();
                db_s.delete(&key).unwrap();
            } else {
                let value = vec![(*kx % 251) as u8; *vlen];
                db_a.put(&key, &value).unwrap();
                db_s.put(&key, &value).unwrap();
            }
        }
        db_a.wait_idle().unwrap();
        db_s.wait_idle().unwrap();
        db_a.compact_range(None, None).unwrap();
        db_s.compact_range(None, None).unwrap();
        prop_assert_eq!(full_stream(&db_a), full_stream(&db_s));
    }
}
