//! End-to-end engine runs under every compaction executor: a mixed
//! put/overwrite/delete workload checked against a BTreeMap oracle,
//! including across restarts, on latency-free and latency-modeled devices.

use pcp::core::{AdaptiveConfig, AdaptiveExec, PipelinedExec, ScpExec};
use pcp::lsm::{CompactionExec, CompactionPolicy, Db, Options, SimpleMergeExec};
use pcp::storage::{EnvRef, SimDevice, SimEnv, SsdModel};
use std::collections::BTreeMap;
use std::sync::Arc;

fn mem_env() -> EnvRef {
    Arc::new(SimEnv::new(Arc::new(SimDevice::mem(2 << 30))))
}

fn small_opts(executor: Arc<dyn CompactionExec>) -> Options {
    Options {
        memtable_bytes: 64 << 10,
        sstable_bytes: 32 << 10,
        policy: CompactionPolicy {
            l0_trigger: 4,
            base_level_bytes: 128 << 10,
            level_multiplier: 10,
        },
        executor,
        ..Default::default()
    }
}

/// Deterministic mixed workload; returns the oracle of final state.
fn apply_workload(db: &Db, ops: u64, seed: u64) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut oracle: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
    let mut x = seed | 1;
    for i in 0..ops {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let key = format!("key{:05}", x % 3000).into_bytes();
        if x.is_multiple_of(11) {
            db.delete(&key).unwrap();
            oracle.insert(key, None);
        } else {
            let value = format!("v{i}-{}", "d".repeat((x % 90) as usize)).into_bytes();
            db.put(&key, &value).unwrap();
            oracle.insert(key, Some(value));
        }
    }
    oracle
        .into_iter()
        .filter_map(|(k, v)| v.map(|v| (k, v)))
        .collect()
}

fn check_against_oracle(db: &Db, oracle: &BTreeMap<Vec<u8>, Vec<u8>>) {
    // Full scan equals oracle.
    let mut it = db.iter();
    it.seek_to_first();
    let mut scanned = BTreeMap::new();
    while it.valid() {
        scanned.insert(it.key().to_vec(), it.value().to_vec());
        it.next();
    }
    assert_eq!(&scanned, oracle, "scan mismatch");
    // Spot gets (present and absent).
    for (k, v) in oracle.iter().take(50) {
        assert_eq!(db.get(k).unwrap().as_ref(), Some(v));
    }
    assert_eq!(db.get(b"key99999").unwrap(), None);
}

fn executors() -> Vec<(&'static str, Arc<dyn CompactionExec>)> {
    vec![
        ("simple", Arc::new(SimpleMergeExec)),
        ("scp", Arc::new(ScpExec::new(16 << 10))),
        ("pcp", Arc::new(PipelinedExec::pcp(16 << 10))),
        ("c-ppcp", Arc::new(PipelinedExec::c_ppcp(16 << 10, 3))),
        ("s-ppcp", Arc::new(PipelinedExec::s_ppcp(16 << 10, 2))),
        (
            "adaptive",
            // A small-job threshold below these tiny compactions, so the
            // adaptive path actually exercises the pipelined shapes.
            Arc::new(AdaptiveExec::new(AdaptiveConfig {
                subtask_bytes: 16 << 10,
                small_job_bytes: 8 << 10,
                ..AdaptiveConfig::default()
            })),
        ),
    ]
}

#[test]
fn mixed_workload_correct_under_every_executor() {
    for (name, exec) in executors() {
        let db = Db::open(mem_env(), small_opts(exec)).unwrap();
        let oracle = apply_workload(&db, 20_000, 0xAB + name.len() as u64);
        db.wait_idle().unwrap();
        let m = db.metrics();
        assert!(
            m.compaction_count + m.trivial_moves > 0,
            "{name}: workload must trigger compactions"
        );
        check_against_oracle(&db, &oracle);
    }
}

#[test]
fn recovery_preserves_state_under_pipelined_executor() {
    let env = mem_env();
    let oracle = {
        let db = Db::open(
            Arc::clone(&env),
            small_opts(Arc::new(PipelinedExec::pcp(16 << 10))),
        )
        .unwrap();
        let oracle = apply_workload(&db, 15_000, 0x77);
        // Drop mid-flight: no explicit flush; WAL must carry the tail.
        oracle
    };
    let db = Db::open(env, small_opts(Arc::new(PipelinedExec::pcp(16 << 10)))).unwrap();
    check_against_oracle(&db, &oracle);
}

#[test]
fn pipelined_compaction_on_latency_modeled_ssd() {
    // Same correctness on a device with real (scaled) latencies. The
    // 0.02 time-scale keeps the test fast while exercising timed I/O.
    let env: EnvRef = Arc::new(SimEnv::new(Arc::new(SimDevice::new(
        "ssd0",
        SsdModel::default(),
        1 << 40,
        0.02,
    ))));
    let db = Db::open(env, small_opts(Arc::new(PipelinedExec::pcp(16 << 10)))).unwrap();
    let oracle = apply_workload(&db, 10_000, 0x99);
    db.compact_range(None, None).unwrap();
    check_against_oracle(&db, &oracle);
    // After full compaction everything sits in one level.
    let populated: Vec<usize> = db
        .level_summary()
        .iter()
        .enumerate()
        .filter(|(_, (files, _))| *files > 0)
        .map(|(l, _)| l)
        .collect();
    assert_eq!(populated.len(), 1, "levels: {:?}", db.level_summary());
}

#[test]
fn executor_swap_between_restarts() {
    // Data written under SCP must be readable under PCP and vice versa
    // (the on-disk format is executor-independent).
    let env = mem_env();
    let oracle = {
        let db = Db::open(Arc::clone(&env), small_opts(Arc::new(ScpExec::new(16 << 10)))).unwrap();
        let oracle = apply_workload(&db, 12_000, 0x55);
        db.wait_idle().unwrap();
        oracle
    };
    let db = Db::open(
        Arc::clone(&env),
        small_opts(Arc::new(PipelinedExec::c_ppcp(16 << 10, 2))),
    )
    .unwrap();
    check_against_oracle(&db, &oracle);
    // Write more under the new executor, verify again.
    let db2_oracle = apply_workload(&db, 8_000, 0x56);
    db.wait_idle().unwrap();
    let mut it = db.iter();
    it.seek_to_first();
    assert!(it.valid());
    for (k, v) in db2_oracle.iter().take(25) {
        assert_eq!(db.get(k).unwrap().as_ref(), Some(v));
    }
}
