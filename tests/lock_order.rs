//! End-to-end checks of the `lock_order` runtime witness (DESIGN.md §11).
//!
//! Built only with `--features lock_order`, the CI lane that runs the
//! whole suite under the vendored parking_lot shim's acquisition-order
//! graph. These tests pin down the witness's contract: consistent
//! ordering stays silent, an inversion panics naming both lock sites.

#![cfg(feature = "lock_order")]

use parking_lot::{Mutex, RwLock};
use std::sync::Arc;

/// Runs `f` on a fresh thread with panic output silenced, returning the
/// panic message if it panicked.
fn panic_message_of(f: impl FnOnce() + Send + 'static) -> Option<String> {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = std::thread::spawn(f).join();
    std::panic::set_hook(prev_hook);
    match outcome {
        Ok(()) => None,
        Err(payload) => Some(
            payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic payload>".to_string()),
        ),
    }
}

#[test]
fn inverted_mutex_order_on_two_threads_fires_with_both_sites() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));

    // Thread 1 establishes the order a -> b.
    {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let _ga = a.lock();
            let _gb = b.lock();
        })
        .join()
        .expect("consistent order must not fire the witness");
    }

    // Thread 2 takes b -> a: the witness must panic at the second lock.
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let message = panic_message_of(move || {
        let _gb = b2.lock();
        let _ga = a2.lock();
    })
    .expect("inverted order must fire the lock-order witness");

    assert!(
        message.contains("lock-order inversion"),
        "unexpected panic: {message}"
    );
    // Both the inverting acquisition sites and the previously established
    // order's sites live in this file: the message must name it for each
    // of the four acquisitions.
    assert!(
        message.matches("lock_order.rs").count() >= 4,
        "expected both lock sites of both orders in: {message}"
    );
}

#[test]
fn consistent_order_across_many_threads_stays_silent() {
    let outer = Arc::new(Mutex::new(())); // always taken first
    let inner = Arc::new(RwLock::new(0u64));
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let (outer, inner) = (Arc::clone(&outer), Arc::clone(&inner));
            std::thread::spawn(move || {
                for _ in 0..100 {
                    let _g = outer.lock();
                    if i % 2 == 0 {
                        *inner.write() += 1;
                    } else {
                        let _ = *inner.read();
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("consistent order must not fire the witness");
    }
    assert_eq!(*inner.read(), 400);
}

#[test]
fn rwlock_participates_in_the_order_graph() {
    let m = Arc::new(Mutex::new(()));
    let rw = Arc::new(RwLock::new(()));

    // Establish m -> rw.
    {
        let (m, rw) = (Arc::clone(&m), Arc::clone(&rw));
        std::thread::spawn(move || {
            let _g = m.lock();
            let _r = rw.read();
        })
        .join()
        .expect("consistent order must not fire the witness");
    }

    // rw (write) -> m inverts it, even though the first hold was a read.
    let message = panic_message_of(move || {
        let _w = rw.write();
        let _g = m.lock();
    })
    .expect("read-vs-write inversion must fire the lock-order witness");
    assert!(message.contains("lock-order inversion"));
}
