//! Scan fast-path equivalence: the pipelined-readahead iterator and the
//! v2 framed block encoding must be pure performance changes. Every
//! combination of `framed_blocks` × `readahead` must produce exactly the
//! scan a `BTreeMap` model predicts — for full scans, for short-range
//! seeks landing mid-table, for the sharded engine's merged cursor, and
//! for v1 tables reopened by a v2-configured database.

use pcp::lsm::{CompactionPolicy, Db, Options};
use pcp::shard::{HashRouter, ShardedDb};
use pcp::storage::{EnvRef, SimDevice, SimEnv};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn mem_env() -> EnvRef {
    Arc::new(SimEnv::new(Arc::new(SimDevice::mem(1 << 30))))
}

/// Tiny thresholds so even small corpora span several tables, and tiny
/// blocks so every table spans enough blocks for the sequential-run
/// trigger to actually start the readahead pipeline.
fn scan_opts(framed: bool, readahead: bool) -> Options {
    Options {
        memtable_bytes: 16 << 10,
        sstable_bytes: 8 << 10,
        block_bytes: 256,
        compression: true,
        framed_blocks: framed,
        readahead,
        readahead_window_bytes: 64 << 10,
        policy: CompactionPolicy {
            l0_trigger: 2,
            base_level_bytes: 32 << 10,
            level_multiplier: 10,
        },
        ..Default::default()
    }
}

/// Key/value corpus with enough locality that delta encoding and the
/// frame directory both get exercised.
fn corpus_strategy() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    prop::collection::vec(
        (
            (0u32..2000).prop_map(|k| format!("key-{k:06}").into_bytes()),
            prop::collection::vec(any::<u8>(), 0..120),
        ),
        1..250,
    )
}

fn full_scan_db(db: &Db) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut it = db.iter();
    it.seek_to_first();
    let mut out = Vec::new();
    while it.valid() {
        out.push((it.key().to_vec(), it.value().to_vec()));
        it.next();
    }
    out
}

fn range_scan_db(db: &Db, start: &[u8], limit: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut it = db.iter();
    it.seek(start);
    let mut out = Vec::new();
    while it.valid() && out.len() < limit {
        out.push((it.key().to_vec(), it.value().to_vec()));
        it.next();
    }
    out
}

fn model_range(
    model: &BTreeMap<Vec<u8>, Vec<u8>>,
    start: &[u8],
    limit: usize,
) -> Vec<(Vec<u8>, Vec<u8>)> {
    model
        .range(start.to_vec()..)
        .take(limit)
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Full scans and mid-table short-range seeks agree with the model
    /// for every (encoding, readahead) combination.
    #[test]
    fn db_scans_match_model_across_encodings_and_readahead(
        corpus in corpus_strategy(),
        start_sel in any::<prop::sample::Index>(),
        limit in 1usize..20,
    ) {
        let mut model = BTreeMap::new();
        for (k, v) in &corpus {
            model.insert(k.clone(), v.clone());
        }
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        let start = corpus[start_sel.index(corpus.len())].0.clone();
        let expected_range = model_range(&model, &start, limit);

        for framed in [false, true] {
            for readahead in [false, true] {
                let db = Db::open(mem_env(), scan_opts(framed, readahead)).unwrap();
                for (k, v) in &corpus {
                    db.put(k, v).unwrap();
                }
                db.flush().unwrap();
                prop_assert_eq!(
                    &full_scan_db(&db), &expected,
                    "full scan diverged (framed={}, readahead={})", framed, readahead
                );
                prop_assert_eq!(
                    &range_scan_db(&db, &start, limit), &expected_range,
                    "range scan diverged (framed={}, readahead={})", framed, readahead
                );
            }
        }
    }

    /// The sharded engine's merged cursor sees the same equivalence: the
    /// scan fast path lives below the shard router, so framing and
    /// readahead must be invisible through it too.
    #[test]
    fn sharded_scans_match_model_across_encodings_and_readahead(
        corpus in corpus_strategy(),
        start_sel in any::<prop::sample::Index>(),
        limit in 1usize..20,
    ) {
        const SHARDS: usize = 2;
        let mut model = BTreeMap::new();
        for (k, v) in &corpus {
            model.insert(k.clone(), v.clone());
        }
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        let start = corpus[start_sel.index(corpus.len())].0.clone();
        let expected_range = model_range(&model, &start, limit);

        for framed in [false, true] {
            for readahead in [false, true] {
                let envs: Vec<EnvRef> = (0..SHARDS).map(|_| mem_env()).collect();
                let db = ShardedDb::open_with_envs(
                    envs,
                    scan_opts(framed, readahead),
                    Arc::new(HashRouter::new(SHARDS)),
                )
                .unwrap();
                for (k, v) in &corpus {
                    db.put(k, v).unwrap();
                }
                db.flush().unwrap();
                let got = db.scan(b"", usize::MAX);
                prop_assert_eq!(
                    &got, &expected,
                    "sharded full scan diverged (framed={}, readahead={})", framed, readahead
                );
                let got_range = db.scan(&start, limit);
                prop_assert_eq!(
                    &got_range, &expected_range,
                    "sharded range scan diverged (framed={}, readahead={})", framed, readahead
                );
            }
        }
    }
}

/// Backward compatibility: tables written by a v1 (unframed) database
/// stay readable — point gets and readahead scans — after reopening the
/// same files with `framed_blocks` and `readahead` turned on, and vice
/// versa. New tables written after the reopen mix freely with the old.
#[test]
fn v1_tables_remain_readable_under_v2_options() {
    for (write_framed, reopen_framed) in [(false, true), (true, false)] {
        let env = mem_env();
        let mut model = BTreeMap::new();
        {
            let db = Db::open(Arc::clone(&env), scan_opts(write_framed, false)).unwrap();
            for i in 0..400u32 {
                let k = format!("key-{i:06}").into_bytes();
                let v = format!("value-{i:06}-{}", "x".repeat(40)).into_bytes();
                db.put(&k, &v).unwrap();
                model.insert(k, v);
            }
            db.flush().unwrap();
        }
        // Reopen the same files under the opposite encoding, readahead on.
        let db = Db::open(Arc::clone(&env), scan_opts(reopen_framed, true)).unwrap();
        for i in 400..500u32 {
            let k = format!("key-{i:06}").into_bytes();
            let v = format!("value-{i:06}").into_bytes();
            db.put(&k, &v).unwrap();
            model.insert(k, v);
        }
        db.flush().unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        assert_eq!(
            full_scan_db(&db),
            expected,
            "mixed-encoding scan diverged (write_framed={write_framed})"
        );
        for (k, v) in model.iter().step_by(37) {
            assert_eq!(db.get(k).unwrap().as_deref(), Some(v.as_slice()));
        }
    }
}
