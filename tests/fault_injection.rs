//! End-to-end fault-injection acceptance tests: the engine must survive
//! injected I/O failures without panicking, without leaking orphan files,
//! and without diverging across compaction executors.
//!
//! * A **permanent** failure during background compaction aborts the
//!   compaction, sweeps its partial outputs, latches a background error
//!   that stalls writes, and is surfaced through [`Db::health`] — reads
//!   keep working.
//! * A **transient** failure is retried by the background worker and the
//!   final state is byte-identical across SCP / PCP / C-PPCP / S-PPCP and
//!   a fault-free run.
//! * At the executor level, compaction under an arbitrary injected fault
//!   is **atomic**: either it returns the same output as a clean run, or
//!   it fails leaving nothing but the input files on disk.

use pcp::core::{PipelinedExec, ScpExec};
use pcp::lsm::filename::table_file;
use pcp::lsm::{
    CompactionExec, CompactionPolicy, CompactionRequest, Db, DbHealth, FileMetadata, Options,
};
use pcp::sstable::key::{make_internal_key, ValueType};
use pcp::sstable::{KvIter, Result as TableResult, TableBuilder, TableBuilderOptions, TableReader};
use pcp::storage::{EnvRef, FaultEnv, FaultKind, FaultOp, SimDevice, SimEnv};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

fn mem_env() -> EnvRef {
    Arc::new(SimEnv::new(Arc::new(SimDevice::mem(512 << 20))))
}

fn small_opts(executor: Arc<dyn CompactionExec>) -> Options {
    Options {
        memtable_bytes: 16 << 10,
        sstable_bytes: 16 << 10,
        policy: CompactionPolicy {
            l0_trigger: 2,
            base_level_bytes: 64 << 10,
            level_multiplier: 10,
        },
        executor,
        ..Options::default()
    }
}

fn dump(db: &Db) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let mut it = db.iter();
    it.seek_to_first();
    let mut out = BTreeMap::new();
    while it.valid() {
        out.insert(it.key().to_vec(), it.value().to_vec());
        it.next();
    }
    out
}

fn sst_files(env: &EnvRef) -> Vec<String> {
    let mut files: Vec<String> = env
        .list()
        .unwrap()
        .into_iter()
        .filter(|n| n.ends_with(".sst"))
        .collect();
    files.sort();
    files
}

/// An executor that arms permanent write faults the moment the background
/// worker hands it a compaction — so earlier flushes run clean and the
/// failure lands deterministically inside the compaction itself.
struct ArmOnCompact {
    inner: PipelinedExec,
    fault: FaultEnv,
}

impl CompactionExec for ArmOnCompact {
    fn name(&self) -> &'static str {
        "arm-on-compact"
    }

    fn compact(&self, req: &CompactionRequest) -> TableResult<Vec<Arc<FileMetadata>>> {
        self.fault
            .set_probability(FaultOp::Flush, 1.0)
            .set_probability(FaultOp::Sync, 1.0)
            .set_probabilistic_kind(FaultKind::Permanent)
            .set_file_filter(".sst");
        self.inner.compact(req)
    }
}

#[test]
fn permanent_compaction_failure_latches_error_and_sweeps_orphans() {
    let inner = mem_env();
    let fault = FaultEnv::new(Arc::clone(&inner), 0xdead);
    let env: EnvRef = Arc::new(fault.clone());
    let mut opts = small_opts(Arc::new(ArmOnCompact {
        inner: PipelinedExec::pcp(4 << 10),
        fault: fault.clone(),
    }));
    // Large enough that the memtable never rotates on its own: L0 reaches
    // the compaction trigger only at the second explicit flush, after all
    // setup writes have been accepted.
    opts.memtable_bytes = 256 << 10;
    let db = Db::open(env, opts).unwrap();

    // Two overlapping L0 tables: enough to trigger a real (non-trivial)
    // background compaction after the second flush.
    for batch in 0..2u32 {
        for i in 0..100u32 {
            let k = format!("k{i:03}").into_bytes();
            let v = format!("value-{batch}-{i}-{}", "x".repeat(80)).into_bytes();
            db.put(&k, &v).unwrap();
        }
        db.flush().unwrap();
    }

    // The compaction must fail, latch a background error, and never panic.
    assert!(db.wait_idle().is_err(), "background error must surface");
    assert!(
        matches!(db.health(), DbHealth::BackgroundError(_)),
        "health must report the latched error, got {:?}",
        db.health()
    );
    assert!(fault.stats().permanent >= 1, "a permanent fault must fire");

    // Writes stall: every new write is rejected with the latched error.
    // (flush() on the now-empty memtable stays a no-op by design.)
    assert!(db.put(b"new-key", b"new-value").is_err());

    // Reads still serve the data that made it in before the failure.
    let got = db.get(b"k000").unwrap();
    assert_eq!(got.as_deref(), Some(format!("value-1-0-{}", "x".repeat(80)).as_bytes()));

    // No orphans: every .sst on disk is referenced by the live version
    // (the aborted compaction's partial outputs were deleted).
    let live: usize = db.level_summary().iter().map(|(files, _)| *files).sum();
    let on_disk = sst_files(db.env());
    assert_eq!(
        on_disk.len(),
        live,
        "orphan outputs left behind: disk={on_disk:?} live={live}"
    );

    // Clean shutdown with a latched error must not hang (Drop joins the
    // background thread).
    drop(db);
}

/// Runs a fixed workload against one executor; when `arm` is set, four
/// transient faults are scheduled on table writes with a fixed seed.
/// Returns the final user-visible state.
fn run_workload(
    executor: Arc<dyn CompactionExec>,
    arm: bool,
) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let inner = mem_env();
    let fault = FaultEnv::new(Arc::clone(&inner), 0xfa17);
    if arm {
        fault
            .schedule_on_file(FaultOp::Flush, 1, FaultKind::Transient, ".sst")
            .schedule_on_file(FaultOp::Flush, 3, FaultKind::Transient, ".sst")
            .schedule_on_file(FaultOp::Sync, 2, FaultKind::Transient, ".sst")
            .schedule_on_file(FaultOp::Append, 10, FaultKind::Transient, ".sst");
    }
    let env: EnvRef = Arc::new(fault.clone());
    let db = Db::open(env, small_opts(executor)).unwrap();
    for batch in 0..3u32 {
        for i in 0..120u32 {
            let k = format!("k{:03}", (i * 7 + batch) % 90).into_bytes();
            let v = format!("v{batch}-{i}-{}", "y".repeat(40)).into_bytes();
            db.put(&k, &v).unwrap();
        }
        db.flush().unwrap();
    }
    db.wait_idle().unwrap();
    assert!(db.health().is_ok(), "transient faults must not latch");
    if arm {
        // All scheduled faults target .sst writes, which only happen in
        // background flush/compaction — so the retry counter must move.
        assert!(fault.stats().transient >= 1, "no transient fault fired");
        assert!(
            db.metrics().bg_retries >= 1,
            "background worker never retried"
        );
    }
    dump(&db)
}

#[test]
fn transient_faults_retry_and_executors_stay_equivalent() {
    let reference = run_workload(Arc::new(PipelinedExec::pcp(4 << 10)), false);
    assert!(!reference.is_empty());
    for (name, exec) in [
        ("scp", Arc::new(ScpExec::new(4 << 10)) as Arc<dyn CompactionExec>),
        ("pcp", Arc::new(PipelinedExec::pcp(4 << 10))),
        ("c-ppcp", Arc::new(PipelinedExec::c_ppcp(4 << 10, 3))),
        ("s-ppcp", Arc::new(PipelinedExec::s_ppcp(4 << 10, 2))),
    ] {
        let got = run_workload(exec, true);
        assert_eq!(
            got, reference,
            "{name} under transient faults diverged from the clean run"
        );
    }
}

/// Regression: a permanently failed background flush leaves the immutable
/// memtable in place and parks the worker. A later `flush()` that needs to
/// rotate must observe the latched error and return — not sleep forever on
/// a condvar nobody will signal again.
#[test]
fn flush_after_latched_flush_failure_errors_instead_of_hanging() {
    let inner = mem_env();
    let fault = FaultEnv::new(Arc::clone(&inner), 3);
    let env: EnvRef = Arc::new(fault.clone());
    let mut opts = small_opts(Arc::new(PipelinedExec::pcp(4 << 10)));
    // Small memtable so the put loop itself forces a rotation (and with it
    // the failing background flush) before the explicit flush call.
    opts.memtable_bytes = 8 << 10;
    let db = Db::open(env, opts).unwrap();
    fault
        .set_probability(FaultOp::Flush, 1.0)
        .set_probability(FaultOp::Sync, 1.0)
        .set_probabilistic_kind(FaultKind::Permanent)
        .set_file_filter(".sst");
    for i in 0..400u32 {
        let k = format!("k{i:03}").into_bytes();
        let v = format!("v{i}-{}", "w".repeat(40)).into_bytes();
        if db.put(&k, &v).is_err() {
            break; // background error latched mid-loop
        }
    }
    // Must return the latched error promptly in every combination of
    // (memtable non-empty, imm stuck, worker parked).
    assert!(db.flush().is_err());
    assert!(db.wait_idle().is_err());
    assert!(matches!(db.health(), DbHealth::BackgroundError(_)));
}

type Entry = (Vec<u8>, u64, ValueType, Vec<u8>);

fn atomicity_input(half: u64, seq_base: u64) -> Vec<Entry> {
    (0..400u64)
        .map(|i| {
            let key = format!("key{:03}", (i * 7 + half) % 150).into_bytes();
            let t = if i % 9 == 0 {
                ValueType::Deletion
            } else {
                ValueType::Value
            };
            (key, seq_base + i, t, format!("val-{half}-{i}").into_bytes())
        })
        .collect()
}

fn build_table(env: &EnvRef, name: &str, entries: &[Entry]) -> Arc<TableReader> {
    let mut sorted: Vec<(Vec<u8>, Vec<u8>)> = entries
        .iter()
        .map(|(k, seq, t, v)| (make_internal_key(k, *seq, *t), v.clone()))
        .collect();
    sorted.sort_by(|a, b| pcp::sstable::internal_key_cmp(&a.0, &b.0));
    sorted.dedup_by(|a, b| a.0 == b.0);
    let f = env.create(name).unwrap();
    let mut b = TableBuilder::new(f, TableBuilderOptions::default());
    for (ik, v) in &sorted {
        b.add(ik, v).unwrap();
    }
    b.finish().unwrap();
    Arc::new(TableReader::open(env.open(name).unwrap()).unwrap())
}

fn read_outputs(env: &EnvRef, outputs: &[Arc<FileMetadata>]) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut all = Vec::new();
    for meta in outputs {
        let t = Arc::new(TableReader::open(env.open(&table_file(meta.number)).unwrap()).unwrap());
        let mut it = t.iter();
        it.seek_to_first();
        while it.valid() {
            all.push((it.key().to_vec(), it.value().to_vec()));
            it.next();
        }
    }
    all
}

/// Compacts the fixed input pair on `env`; inputs are built and read
/// through the *inner* env so only the compaction's own writes pass
/// through any fault wrapper layered on top.
type CompactOutcome = (Vec<Arc<FileMetadata>>, Vec<(Vec<u8>, Vec<u8>)>);

fn compact_inputs(inner: &EnvRef, req_env: EnvRef) -> TableResult<CompactOutcome> {
    let upper = build_table(inner, "u.sst", &atomicity_input(1, 10_000));
    let lower = build_table(inner, "l.sst", &atomicity_input(0, 1));
    let req = CompactionRequest {
        env: req_env,
        upper: vec![upper],
        lower: vec![lower],
        output_level: 1,
        bottom_level: true,
        smallest_snapshot: pcp::sstable::key::MAX_SEQUENCE,
        file_numbers: Arc::new(AtomicU64::new(100)),
        table_opts: TableBuilderOptions::default(),
        max_output_bytes: 8 << 10,
        grant: pcp_lsm::ResourceGrant::unlimited(),
    };
    let outputs = PipelinedExec::pcp(2 << 10).compact(&req)?;
    let entries = read_outputs(inner, &outputs);
    Ok((outputs, entries))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Compaction under an injected fault is atomic: it either produces
    /// exactly the clean output, or fails leaving only the inputs on disk.
    #[test]
    fn compaction_under_faults_is_atomic(
        op_sel in 0usize..3,
        nth in 1u64..40,
        transient in prop::bool::ANY,
        seed in any::<u64>(),
    ) {
        let clean_env = mem_env();
        let (_, clean) = compact_inputs(&clean_env, Arc::clone(&clean_env)).unwrap();

        let inner = mem_env();
        let fault = FaultEnv::new(Arc::clone(&inner), seed);
        let op = [FaultOp::Append, FaultOp::Flush, FaultOp::Sync][op_sel];
        let kind = if transient { FaultKind::Transient } else { FaultKind::Permanent };
        fault.schedule_on_file(op, nth, kind, ".sst");
        match compact_inputs(&inner, Arc::new(fault.clone())) {
            Ok((outputs, entries)) => {
                prop_assert_eq!(entries, clean, "fault-survived run diverged");
                let mut want: Vec<String> = outputs
                    .iter()
                    .map(|m| table_file(m.number))
                    .chain(["l.sst".to_string(), "u.sst".to_string()])
                    .collect();
                want.sort();
                prop_assert_eq!(sst_files(&inner), want);
            }
            Err(_) => {
                // Aborted: every partial output must have been swept.
                prop_assert_eq!(
                    sst_files(&inner),
                    vec!["l.sst".to_string(), "u.sst".to_string()],
                    "orphan outputs after aborted compaction"
                );
            }
        }
    }
}
