//! Device-level validation of the pipeline's I/O claims, via the tracing
//! device: compaction step S1 issues span reads (not per-block reads),
//! and step S7 issues roughly sub-task-sized writes (one flush per
//! sub-task).

use pcp::core::{PipelinedExec, ScpExec};
use pcp::lsm::filename::table_file;
use pcp::lsm::{CompactionExec, CompactionRequest};
use pcp::sstable::key::{make_internal_key, ValueType, MAX_SEQUENCE};
use pcp::sstable::{TableBuilder, TableBuilderOptions, TableReader};
use pcp::storage::model::IoKind;
use pcp::storage::{DeviceRef, EnvRef, SimDevice, SimEnv, TraceDevice};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

const SUBTASK: u64 = 128 << 10;

type Tables = Vec<Arc<TableReader>>;

/// Builds a fixture on a traced RAM device; returns (trace handle, env,
/// upper, lower).
fn traced_fixture() -> (Arc<TraceDevice>, EnvRef, Tables, Tables) {
    let trace = Arc::new(TraceDevice::new(Arc::new(SimDevice::mem(1 << 30))));
    let device: DeviceRef = trace.clone();
    let env: EnvRef = Arc::new(SimEnv::new(device));
    let mk = |name: &str, n: usize, stride: u64, seq0: u64| {
        let f = env.create(name).unwrap();
        let mut b = TableBuilder::new(f, TableBuilderOptions::default());
        let mut x = 7u64;
        for i in 0..n {
            let ik = make_internal_key(
                format!("{:012}", i as u64 * stride).as_bytes(),
                seq0 + i as u64,
                ValueType::Value,
            );
            let mut v = Vec::with_capacity(90);
            for _ in 0..90 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                v.push(x as u8);
            }
            b.add(&ik, &v).unwrap();
        }
        b.finish().unwrap();
        Arc::new(TableReader::open(env.open(name).unwrap()).unwrap())
    };
    let lower = mk("lower.sst", 8000, 2, 1);
    let upper = mk("upper.sst", 4000, 4, 1_000_000);
    (trace, env, vec![upper], vec![lower])
}

fn request(env: &EnvRef, upper: Vec<Arc<TableReader>>, lower: Vec<Arc<TableReader>>) -> CompactionRequest {
    CompactionRequest {
        env: Arc::clone(env),
        upper,
        lower,
        output_level: 1,
        bottom_level: true,
        smallest_snapshot: MAX_SEQUENCE,
        file_numbers: Arc::new(AtomicU64::new(500)),
        table_opts: TableBuilderOptions::default(),
        max_output_bytes: 1 << 20,
        grant: pcp_lsm::ResourceGrant::unlimited(),
    }
}

#[test]
fn pipeline_issues_subtask_granular_io() {
    let (trace, env, upper, lower) = traced_fixture();
    let input_bytes: u64 = upper
        .iter()
        .chain(lower.iter())
        .map(|t| t.stats().file_size)
        .sum();
    trace.clear(); // drop the fixture-build writes
    let req = request(&env, upper, lower);
    let exec = PipelinedExec::pcp(SUBTASK);
    let outputs = exec.compact(&req).unwrap();
    assert!(!outputs.is_empty());

    let reads = trace.count(IoKind::Read);
    let mean_read = trace.mean_len(IoKind::Read);
    // Span reads: far fewer reads than 4 KB blocks, with large mean size.
    let block_count = input_bytes / 4096;
    assert!(
        (reads as u64) < block_count / 4,
        "expected span reads, got {reads} reads for ~{block_count} blocks"
    );
    assert!(
        mean_read > 16.0 * 1024.0,
        "mean read {mean_read:.0}B should be a large fraction of the sub-task"
    );

    // Writes: flush-per-subtask keeps the mean write large too (table
    // metadata blocks pull the mean down a little).
    let mean_write = trace.mean_len(IoKind::Write);
    assert!(
        mean_write > 8.0 * 1024.0,
        "mean write {mean_write:.0}B too small for sub-task flushing"
    );
    // Compaction output is written append-only: high sequentiality.
    assert!(
        trace.sequential_fraction(IoKind::Write) > 0.5,
        "compaction writes should be mostly sequential: {}",
        trace.sequential_fraction(IoKind::Write)
    );
    for f in outputs {
        let _ = env.delete(&table_file(f.number));
    }
}

#[test]
fn scp_and_pcp_issue_identical_read_patterns() {
    // The pipeline changes *when* I/O happens, not *what* I/O happens.
    let mut patterns = Vec::new();
    for which in ["scp", "pcp"] {
        let (trace, env, upper, lower) = traced_fixture();
        trace.clear();
        let req = request(&env, upper, lower);
        let exec: Box<dyn CompactionExec> = if which == "scp" {
            Box::new(ScpExec::new(SUBTASK))
        } else {
            Box::new(PipelinedExec::pcp(SUBTASK))
        };
        exec.compact(&req).unwrap();
        let mut reads: Vec<(u64, usize)> = trace
            .trace()
            .into_iter()
            .filter(|r| r.kind == IoKind::Read)
            .map(|r| (r.offset, r.len))
            .collect();
        reads.sort();
        patterns.push(reads);
    }
    assert_eq!(
        patterns[0], patterns[1],
        "SCP and PCP must read exactly the same spans"
    );
}
