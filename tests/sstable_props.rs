//! Property tests of the SSTable layer: arbitrary entry sets roundtrip
//! through build → scan/get, and any single-bit corruption of any data
//! block is caught by the checksum step.

use pcp::sstable::key::{make_internal_key, user_key, ValueType, MAX_SEQUENCE};
use pcp::sstable::table::verify_block;
use pcp::sstable::{
    internal_key_cmp, KvIter, TableBuilder, TableBuilderOptions, TableReader,
};
use pcp::storage::{EnvRef, SimDevice, SimEnv};
use proptest::prelude::*;
use std::sync::Arc;

fn mem_env() -> EnvRef {
    Arc::new(SimEnv::new(Arc::new(SimDevice::mem(128 << 20))))
}

fn build(
    env: &EnvRef,
    entries: &[(Vec<u8>, u64, bool, Vec<u8>)],
    block_size: usize,
) -> Arc<TableReader> {
    let mut sorted: Vec<(Vec<u8>, Vec<u8>)> = entries
        .iter()
        .map(|(k, seq, del, v)| {
            (
                make_internal_key(
                    k,
                    *seq,
                    if *del { ValueType::Deletion } else { ValueType::Value },
                ),
                v.clone(),
            )
        })
        .collect();
    sorted.sort_by(|a, b| internal_key_cmp(&a.0, &b.0));
    sorted.dedup_by(|a, b| a.0 == b.0);
    let f = env.create("t.sst").unwrap();
    let mut b = TableBuilder::new(
        f,
        TableBuilderOptions {
            block_size,
            ..Default::default()
        },
    );
    for (ik, v) in &sorted {
        b.add(ik, v).unwrap();
    }
    b.finish().unwrap();
    Arc::new(TableReader::open(env.open("t.sst").unwrap()).unwrap())
}

fn entry_strategy() -> impl Strategy<Value = Vec<(Vec<u8>, u64, bool, Vec<u8>)>> {
    prop::collection::vec(
        (
            prop::collection::vec(any::<u8>(), 1..24),
            1u64..10_000,
            any::<bool>(),
            prop::collection::vec(any::<u8>(), 0..120),
        ),
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn build_scan_roundtrip(entries in entry_strategy(), block_size in 64usize..2048) {
        let env = mem_env();
        let reader = build(&env, &entries, block_size);
        // Expected: sorted, deduped internal keys.
        let mut want: Vec<(Vec<u8>, Vec<u8>)> = entries
            .iter()
            .map(|(k, seq, del, v)| {
                (
                    make_internal_key(k, *seq, if *del { ValueType::Deletion } else { ValueType::Value }),
                    v.clone(),
                )
            })
            .collect();
        want.sort_by(|a, b| internal_key_cmp(&a.0, &b.0));
        want.dedup_by(|a, b| a.0 == b.0);

        let mut it = reader.iter();
        it.seek_to_first();
        let mut got = Vec::new();
        while it.valid() {
            got.push((it.key().to_vec(), it.value().to_vec()));
            it.next();
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn point_gets_find_every_key(entries in entry_strategy()) {
        let env = mem_env();
        let reader = build(&env, &entries, 256);
        for (k, _, _, _) in entries.iter().take(60) {
            let target = make_internal_key(k, MAX_SEQUENCE, ValueType::Value);
            let hit = reader.get(&target).unwrap();
            let (ik, _) = hit.expect("existing user key must be found");
            prop_assert_eq!(user_key(&ik), k.as_slice());
        }
    }

    #[test]
    fn any_bit_flip_in_any_data_block_is_detected(
        entries in entry_strategy(),
        block_sel in any::<prop::sample::Index>(),
        byte_sel in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let env = mem_env();
        let reader = build(&env, &entries, 256);
        let metas = reader.block_metas().unwrap();
        let meta = &metas[block_sel.index(metas.len())];
        let raw = reader.read_raw_block(meta.handle).unwrap();
        let mut corrupt = raw.to_vec();
        let idx = byte_sel.index(corrupt.len());
        corrupt[idx] ^= 1 << bit;
        prop_assert!(
            verify_block(&corrupt).is_err(),
            "flip at byte {} bit {} of block {:?} undetected",
            idx, bit, meta.handle
        );
    }
}
