//! Property tests for the codec substrate.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn lz_roundtrips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..8192)) {
        let mut comp = Vec::new();
        pcp::codec::compress(&data, &mut comp);
        prop_assert!(comp.len() <= pcp::codec::max_compressed_len(data.len()));
        let mut out = Vec::new();
        pcp::codec::decompress(&comp, &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn lz_roundtrips_structured_bytes(
        phrase in prop::collection::vec(any::<u8>(), 1..32),
        repeats in 1usize..512,
        noise in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // Repetitive corpus stitched with noise: exercises copy emission.
        let mut data = Vec::new();
        for i in 0..repeats {
            data.extend_from_slice(&phrase);
            if i % 7 == 0 {
                data.extend_from_slice(&noise);
            }
        }
        let mut comp = Vec::new();
        pcp::codec::compress(&data, &mut comp);
        let mut out = Vec::new();
        pcp::codec::decompress(&comp, &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn lz_never_panics_on_garbage_streams(garbage in prop::collection::vec(any::<u8>(), 0..512)) {
        // Must reject or roundtrip, never panic or overrun.
        let mut out = Vec::new();
        let _ = pcp::codec::decompress(&garbage, &mut out);
    }

    #[test]
    fn truncated_compressed_stream_never_roundtrips_silently(
        data in prop::collection::vec(any::<u8>(), 64..1024),
        cut_fraction in 0.01f64..0.99,
    ) {
        let mut comp = Vec::new();
        pcp::codec::compress(&data, &mut comp);
        let cut = ((comp.len() as f64) * cut_fraction) as usize;
        let mut out = Vec::new();
        if pcp::codec::decompress(&comp[..cut], &mut out).is_ok() {
            // Only acceptable "success" would be exact equality, which a
            // strict length header makes impossible for a strict prefix.
            prop_assert_eq!(out, data);
        }
    }

    #[test]
    fn varint_roundtrips(v in any::<u64>()) {
        let enc = pcp::codec::encode_u64(v);
        let (dec, n) = pcp::codec::decode_u64(&enc).unwrap();
        prop_assert_eq!(dec, v);
        prop_assert_eq!(n, enc.len());
        prop_assert_eq!(n, pcp::codec::encoded_len_u64(v));
    }

    #[test]
    fn varint_sequences_roundtrip(values in prop::collection::vec(any::<u64>(), 0..100)) {
        let mut buf = Vec::new();
        for &v in &values {
            pcp::codec::put_u64(&mut buf, v);
        }
        let mut pos = 0;
        let mut out = Vec::new();
        while pos < buf.len() {
            let (v, n) = pcp::codec::decode_u64(&buf[pos..]).unwrap();
            out.push(v);
            pos += n;
        }
        prop_assert_eq!(out, values);
    }

    #[test]
    fn crc_detects_any_single_byte_change(
        data in prop::collection::vec(any::<u8>(), 1..1024),
        idx_sel in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let idx = idx_sel.index(data.len());
        let clean = pcp::codec::crc32c(&data);
        let mut corrupt = data.clone();
        corrupt[idx] ^= flip;
        prop_assert_ne!(pcp::codec::crc32c(&corrupt), clean);
    }

    #[test]
    fn frame_roundtrips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let mut comp = Vec::new();
        let n = pcp::codec::compress_frame(&data, &mut comp);
        prop_assert_eq!(n, comp.len());
        // Verbatim fallback keeps frames no larger than their input.
        prop_assert!(comp.len() <= data.len() || data.is_empty());
        let mut out = Vec::new();
        pcp::codec::decompress_frame(&comp, data.len(), &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn frame_roundtrips_compressible_bytes(
        phrase in prop::collection::vec(any::<u8>(), 1..16),
        repeats in 8usize..256,
    ) {
        // At least 128 bytes of pure repetition: always beats LZ overhead.
        let data: Vec<u8> = phrase
            .iter()
            .cycle()
            .take(128 + phrase.len() * repeats)
            .copied()
            .collect();
        let mut comp = Vec::new();
        pcp::codec::compress_frame(&data, &mut comp);
        prop_assert!(comp.len() < data.len(), "repetitive frame should shrink");
        let mut out = Vec::new();
        pcp::codec::decompress_frame(&comp, data.len(), &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn truncated_frame_is_rejected_and_leaves_output_untouched(
        data in prop::collection::vec(any::<u8>(), 32..1024),
        cut_fraction in 0.01f64..0.99,
    ) {
        let mut comp = Vec::new();
        pcp::codec::compress_frame(&data, &mut comp);
        let cut = (((comp.len() - 1) as f64) * cut_fraction) as usize;
        // A strict prefix can never equal `raw_len` (compressed frames are
        // strictly smaller than raw, verbatim ones exactly raw), so the
        // verbatim path cannot mask truncation; the only acceptable "Ok"
        // would be a byte-exact roundtrip, which a prefix cannot produce.
        let mut out = vec![0xAB; 7];
        match pcp::codec::decompress_frame(&comp[..cut], data.len(), &mut out) {
            Ok(()) => prop_assert_eq!(&out[7..], &data[..]),
            Err(_) => prop_assert_eq!(out, vec![0xABu8; 7]),
        }
    }

    #[test]
    fn frame_with_wrong_raw_len_is_rejected(
        phrase in prop::collection::vec(any::<u8>(), 1..16),
        repeats in 16usize..256,
        extra in 1usize..64,
    ) {
        // Compressible input so the frame takes the compressed path: the
        // stream then decodes to exactly `data.len()` bytes, and any other
        // declared raw length must be rejected. (A verbatim frame cannot
        // make this guarantee — declaring raw_len == stored length is the
        // verbatim signal itself; the block CRC covers that case.)
        let data: Vec<u8> = phrase
            .iter()
            .cycle()
            .take(128 + phrase.len() * repeats)
            .copied()
            .collect();
        let mut comp = Vec::new();
        pcp::codec::compress_frame(&data, &mut comp);
        prop_assert!(comp.len() < data.len(), "128+ byte repetition must compress");
        let wrong = data.len() + extra;
        let mut out = Vec::new();
        prop_assert!(pcp::codec::decompress_frame(&comp, wrong, &mut out).is_err());
        prop_assert!(out.is_empty());
    }

    #[test]
    fn corrupt_frame_never_silently_shrinks_or_grows(
        data in prop::collection::vec(any::<u8>(), 64..1024),
        idx_sel in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        // A flipped literal byte inside an LZ stream can still decode to
        // the declared length with different contents — end-to-end
        // integrity is the block CRC's job. The frame layer still must
        // reject any corruption that changes the decoded length.
        let mut comp = Vec::new();
        pcp::codec::compress_frame(&data, &mut comp);
        let mut bad = comp.clone();
        let idx = idx_sel.index(bad.len());
        bad[idx] ^= flip;
        let mut out = Vec::new();
        if pcp::codec::decompress_frame(&bad, data.len(), &mut out).is_ok() {
            prop_assert_eq!(out.len(), data.len());
        } else {
            prop_assert!(out.is_empty());
        }
    }

    #[test]
    fn crc_incremental_matches_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..2048),
        split_sel in any::<prop::sample::Index>(),
    ) {
        let split = if data.is_empty() { 0 } else { split_sel.index(data.len() + 1) };
        let mut inc = pcp::codec::Crc32c::new();
        inc.update(&data[..split]);
        inc.update(&data[split..]);
        prop_assert_eq!(inc.finalize(), pcp::codec::crc32c(&data));
    }
}
