//! Property tests for the codec substrate.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn lz_roundtrips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..8192)) {
        let mut comp = Vec::new();
        pcp::codec::compress(&data, &mut comp);
        prop_assert!(comp.len() <= pcp::codec::max_compressed_len(data.len()));
        let mut out = Vec::new();
        pcp::codec::decompress(&comp, &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn lz_roundtrips_structured_bytes(
        phrase in prop::collection::vec(any::<u8>(), 1..32),
        repeats in 1usize..512,
        noise in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // Repetitive corpus stitched with noise: exercises copy emission.
        let mut data = Vec::new();
        for i in 0..repeats {
            data.extend_from_slice(&phrase);
            if i % 7 == 0 {
                data.extend_from_slice(&noise);
            }
        }
        let mut comp = Vec::new();
        pcp::codec::compress(&data, &mut comp);
        let mut out = Vec::new();
        pcp::codec::decompress(&comp, &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn lz_never_panics_on_garbage_streams(garbage in prop::collection::vec(any::<u8>(), 0..512)) {
        // Must reject or roundtrip, never panic or overrun.
        let mut out = Vec::new();
        let _ = pcp::codec::decompress(&garbage, &mut out);
    }

    #[test]
    fn truncated_compressed_stream_never_roundtrips_silently(
        data in prop::collection::vec(any::<u8>(), 64..1024),
        cut_fraction in 0.01f64..0.99,
    ) {
        let mut comp = Vec::new();
        pcp::codec::compress(&data, &mut comp);
        let cut = ((comp.len() as f64) * cut_fraction) as usize;
        let mut out = Vec::new();
        if pcp::codec::decompress(&comp[..cut], &mut out).is_ok() {
            // Only acceptable "success" would be exact equality, which a
            // strict length header makes impossible for a strict prefix.
            prop_assert_eq!(out, data);
        }
    }

    #[test]
    fn varint_roundtrips(v in any::<u64>()) {
        let enc = pcp::codec::encode_u64(v);
        let (dec, n) = pcp::codec::decode_u64(&enc).unwrap();
        prop_assert_eq!(dec, v);
        prop_assert_eq!(n, enc.len());
        prop_assert_eq!(n, pcp::codec::encoded_len_u64(v));
    }

    #[test]
    fn varint_sequences_roundtrip(values in prop::collection::vec(any::<u64>(), 0..100)) {
        let mut buf = Vec::new();
        for &v in &values {
            pcp::codec::put_u64(&mut buf, v);
        }
        let mut pos = 0;
        let mut out = Vec::new();
        while pos < buf.len() {
            let (v, n) = pcp::codec::decode_u64(&buf[pos..]).unwrap();
            out.push(v);
            pos += n;
        }
        prop_assert_eq!(out, values);
    }

    #[test]
    fn crc_detects_any_single_byte_change(
        data in prop::collection::vec(any::<u8>(), 1..1024),
        idx_sel in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let idx = idx_sel.index(data.len());
        let clean = pcp::codec::crc32c(&data);
        let mut corrupt = data.clone();
        corrupt[idx] ^= flip;
        prop_assert_ne!(pcp::codec::crc32c(&corrupt), clean);
    }

    #[test]
    fn crc_incremental_matches_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..2048),
        split_sel in any::<prop::sample::Index>(),
    ) {
        let split = if data.is_empty() { 0 } else { split_sel.index(data.len() + 1) };
        let mut inc = pcp::codec::Crc32c::new();
        inc.update(&data[..split]);
        inc.update(&data[split..]);
        prop_assert_eq!(inc.finalize(), pcp::codec::crc32c(&data));
    }
}
