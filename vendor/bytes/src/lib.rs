//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the real `Bytes` API this workspace uses: a
//! cheaply cloneable, immutable, contiguous byte buffer with zero-copy
//! sub-slicing. Backed by `Arc<[u8]>` plus a window, so `clone` and
//! `slice` are O(1) and never copy.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static slice (copies it; the real crate borrows, but the
    /// observable behaviour is identical and the callers are tests).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of the visible window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Zero-copy sub-window. Panics when the range is out of bounds, like
    /// the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the window out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_ref(), f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let b = Bytes::from(b"hello world".to_vec());
        assert_eq!(&b[..], b"hello world");
        let s = b.slice(6..);
        assert_eq!(&s[..], b"world");
        let s2 = s.slice(1..3);
        assert_eq!(&s2[..], b"or");
        assert_eq!(s2.len(), 2);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_shallow() {
        let b = Bytes::from(vec![1u8; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(Arc::strong_count(&b.data), 2);
    }
}
