//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns the guard directly (a poisoned std lock is treated as
//! acquired — the data is guarded by our own invariants, not by poison
//! state), and `MutexGuard::unlocked` temporarily releases the lock.
//!
//! With the `lock_order` feature (on in the workspace's test lanes) every
//! `Mutex`/`RwLock` acquisition is checked against a process-global
//! acquisition-order graph; taking two locks in an order that inverts a
//! previously observed order panics with both acquisition sites — a cheap
//! runtime deadlock witness that every existing test exercises for free.
//! See the `order` module for the mechanism.

#[cfg(feature = "lock_order")]
mod order;

#[cfg(feature = "lock_order")]
use std::sync::atomic::AtomicUsize;

use std::sync;

/// Registers a blocking acquisition of the lock owning `slot` with the
/// lock-order witness (no-op without the `lock_order` feature).
macro_rules! witness_acquire {
    ($slot:expr) => {
        #[cfg(feature = "lock_order")]
        order::acquire(order::lock_id($slot), std::panic::Location::caller());
    };
}

/// Registers a successful non-blocking acquisition (no ordering edge).
macro_rules! witness_acquire_try {
    ($slot:expr) => {
        #[cfg(feature = "lock_order")]
        order::acquire_try(order::lock_id($slot), std::panic::Location::caller());
    };
}

/// Registers a release with the lock-order witness.
macro_rules! witness_release {
    ($slot:expr) => {
        #[cfg(feature = "lock_order")]
        order::release(order::lock_id($slot));
    };
}

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    /// Witness identity, assigned on first acquisition (0 = unassigned).
    #[cfg(feature = "lock_order")]
    order_slot: AtomicUsize,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            #[cfg(feature = "lock_order")]
            order_slot: AtomicUsize::new(0),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        witness_acquire!(&self.order_slot);
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard {
            lock: self,
            inner: Some(guard),
        }
    }

    /// Tries to acquire the lock without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let guard = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        witness_acquire_try!(&self.order_slot);
        Some(MutexGuard {
            lock: self,
            inner: Some(guard),
        })
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// RAII guard for [`Mutex`]. The inner std guard is `Some` except for the
/// window inside [`MutexGuard::unlocked`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Releases the lock, runs `f`, then reacquires it.
    #[track_caller]
    pub fn unlocked<F, R>(guard: &mut MutexGuard<'a, T>, f: F) -> R
    where
        F: FnOnce() -> R,
    {
        guard.inner = None;
        witness_release!(&guard.lock.order_slot);
        let result = f();
        witness_acquire!(&guard.lock.order_slot);
        guard.inner = Some(match guard.lock.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
        result
    }

    fn std_guard(&mut self) -> sync::MutexGuard<'a, T> {
        self.inner.take().expect("guard held")
    }
}

/// Pops the lock from the witness's held set. Skipped when the guard does
/// not currently hold the lock (inside [`MutexGuard::unlocked`] or a
/// condvar wait, both of which manage the witness themselves).
#[cfg(feature = "lock_order")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            witness_release!(&self.lock.order_slot);
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard held")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard held")
    }
}

/// A non-poisoning condition variable for [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and waits for a notification.
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.std_guard();
        witness_release!(&guard.lock.order_slot);
        let reacquired = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        witness_acquire!(&guard.lock.order_slot);
        guard.inner = Some(reacquired);
    }

    /// As [`Condvar::wait`] with a timeout; returns true when it timed out.
    #[track_caller]
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> bool {
        let std_guard = guard.std_guard();
        witness_release!(&guard.lock.order_slot);
        let (reacquired, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        witness_acquire!(&guard.lock.order_slot);
        guard.inner = Some(reacquired);
        result.timed_out()
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    /// Witness identity, assigned on first acquisition (0 = unassigned).
    #[cfg(feature = "lock_order")]
    order_slot: AtomicUsize,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            #[cfg(feature = "lock_order")]
            order_slot: AtomicUsize::new(0),
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        witness_acquire!(&self.order_slot);
        RwLockReadGuard {
            #[cfg(feature = "lock_order")]
            lock: self,
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }

    /// Acquires exclusive write access.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        witness_acquire!(&self.order_slot);
        RwLockWriteGuard {
            #[cfg(feature = "lock_order")]
            lock: self,
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            },
        }
    }
}

/// RAII guard for shared access to a [`RwLock`].
///
/// The witness treats read and write acquisitions alike: a read-then-write
/// order inverted elsewhere still deadlocks once a writer joins, so the
/// conservative edge is the useful one.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock_order")]
    lock: &'a RwLock<T>,
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(feature = "lock_order")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        witness_release!(&self.lock.order_slot);
    }
}

/// RAII guard for exclusive access to a [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock_order")]
    lock: &'a RwLock<T>,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "lock_order")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        witness_release!(&self.lock.order_slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guard_roundtrip() {
        let m = Mutex::new(1);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn unlocked_releases_and_reacquires() {
        let m = Arc::new(Mutex::new(0));
        let mut g = m.lock();
        let m2 = Arc::clone(&m);
        MutexGuard::unlocked(&mut g, move || {
            // Must not deadlock: the lock is free inside the closure.
            *m2.lock() = 7;
        });
        assert_eq!(*g, 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
