//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns the guard directly (a poisoned std lock is treated as
//! acquired — the data is guarded by our own invariants, not by poison
//! state), and `MutexGuard::unlocked` temporarily releases the lock.

use std::sync;

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard {
            lock: self,
            inner: Some(guard),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                lock: self,
                inner: Some(g),
            }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// RAII guard for [`Mutex`]. The inner std guard is `Some` except for the
/// window inside [`MutexGuard::unlocked`].
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Releases the lock, runs `f`, then reacquires it.
    pub fn unlocked<F, R>(guard: &mut MutexGuard<'a, T>, f: F) -> R
    where
        F: FnOnce() -> R,
    {
        guard.inner = None;
        let result = f();
        guard.inner = Some(match guard.lock.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
        result
    }

    fn std_guard(&mut self) -> sync::MutexGuard<'a, T> {
        self.inner.take().expect("guard held")
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard held")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard held")
    }
}

/// A non-poisoning condition variable for [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and waits for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.std_guard();
        let reacquired = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(reacquired);
    }

    /// As [`Condvar::wait`] with a timeout; returns true when it timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> bool {
        let std_guard = guard.std_guard();
        let (reacquired, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(reacquired);
        result.timed_out()
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guard_roundtrip() {
        let m = Mutex::new(1);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn unlocked_releases_and_reacquires() {
        let m = Arc::new(Mutex::new(0));
        let mut g = m.lock();
        let m2 = Arc::clone(&m);
        MutexGuard::unlocked(&mut g, move || {
            // Must not deadlock: the lock is free inside the closure.
            *m2.lock() = 7;
        });
        assert_eq!(*g, 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
