//! Runtime lock-order witness (feature `lock_order`).
//!
//! Every blocking acquisition through this shim records, for each lock the
//! calling thread already holds, a directed edge `held → wanted` in a
//! process-global acquisition-order graph. Before the edge is inserted, a
//! DFS asks whether `wanted` can already reach `held`: if it can, two code
//! paths take the same pair of locks in opposite orders — a latent
//! deadlock — and the witness panics naming both acquisition sites of the
//! current inversion and both sites of the previously established order.
//!
//! Identity is per lock *instance* (an id is assigned on first
//! acquisition), so sibling instances of one type — e.g. the per-shard DB
//! mutexes — may be taken in any order without false positives. `try_*`
//! acquisitions register the lock as held but add no ordering edge: a
//! non-blocking attempt cannot participate in a deadlock cycle.
//!
//! The graph only grows (lock ids are never reused), which is the right
//! trade-off for its audience: the test suite, where the witness is meant
//! to run on every pass for free.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

type Site = &'static Location<'static>;

/// Allocates instance ids; 0 in a lock's slot means "not yet assigned".
static NEXT_ID: AtomicUsize = AtomicUsize::new(1);

/// Returns the stable id for a lock, assigning one on first use.
pub(crate) fn lock_id(slot: &AtomicUsize) -> usize {
    let current = slot.load(Ordering::Relaxed);
    if current != 0 {
        return current;
    }
    let candidate = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    match slot.compare_exchange(0, candidate, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => candidate,
        Err(winner) => winner,
    }
}

/// First-observation record of an ordering edge `from → to`.
struct Edge {
    /// Where the held (`from`) lock had been acquired.
    from_site: Site,
    /// Where the `to` lock was then acquired while `from` was held.
    to_site: Site,
}

#[derive(Default)]
struct Graph {
    /// Adjacency: `edges[from][to]` exists once `to` was acquired with
    /// `from` held.
    edges: HashMap<usize, HashMap<usize, Edge>>,
}

impl Graph {
    /// Depth-first path `from → … → to`, returned as the visited node
    /// chain (used to name the edge that established the reverse order).
    fn find_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        let mut stack = vec![vec![from]];
        let mut seen = std::collections::HashSet::new();
        seen.insert(from);
        while let Some(path) = stack.pop() {
            let Some(&last) = path.last() else { continue };
            if last == to {
                return Some(path);
            }
            if let Some(next) = self.edges.get(&last) {
                for &succ in next.keys() {
                    if seen.insert(succ) {
                        let mut longer = path.clone();
                        longer.push(succ);
                        stack.push(longer);
                    }
                }
            }
        }
        None
    }
}

fn graph() -> &'static Mutex<Graph> {
    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(Mutex::default)
}

fn lock_graph() -> std::sync::MutexGuard<'static, Graph> {
    match graph().lock() {
        Ok(g) => g,
        // The witness itself panicked with the graph held (in the thread
        // that observed an inversion); the data is still consistent.
        Err(poisoned) => poisoned.into_inner(),
    }
}

thread_local! {
    /// Locks currently held by this thread, in acquisition order.
    static HELD: RefCell<Vec<(usize, Site)>> = const { RefCell::new(Vec::new()) };
}

/// Records a blocking acquisition attempt of `id` at `site`, panicking if
/// it inverts an ordering the graph has already established.
pub(crate) fn acquire(id: usize, site: Site) {
    let inversion = HELD.with(|held| {
        let held = held.borrow();
        if held.is_empty() {
            return None;
        }
        let mut graph = lock_graph();
        for &(held_id, held_site) in held.iter() {
            if held_id == id {
                continue;
            }
            let already_known = graph
                .edges
                .get(&held_id)
                .is_some_and(|next| next.contains_key(&id));
            if already_known {
                continue;
            }
            // Would `held_id → id` close a cycle `id → … → held_id`?
            if let Some(path) = graph.find_path(id, held_id) {
                let (ef, et) = (path[0], path[1]);
                let prior = &graph.edges[&ef][&et];
                return Some(format!(
                    "lock-order inversion: acquiring lock #{id} at {site} while holding \
                     lock #{held_id} (acquired at {held_site}), but the opposite order \
                     was established earlier: lock #{et} was acquired at {} while \
                     holding lock #{ef} (acquired at {}){}",
                    prior.to_site,
                    prior.from_site,
                    if path.len() > 2 {
                        format!(" via a {}-lock chain", path.len())
                    } else {
                        String::new()
                    }
                ));
            }
            graph.edges.entry(held_id).or_default().insert(
                id,
                Edge {
                    from_site: held_site,
                    to_site: site,
                },
            );
        }
        None
    });
    if let Some(message) = inversion {
        panic!("{message}");
    }
    HELD.with(|held| held.borrow_mut().push((id, site)));
}

/// Records a successful non-blocking (`try_*`) acquisition: the lock is
/// held, but no ordering edge is implied.
pub(crate) fn acquire_try(id: usize, site: Site) {
    HELD.with(|held| held.borrow_mut().push((id, site)));
}

/// Records a release of `id` (most recent acquisition first, since guards
/// may be dropped in any order).
pub(crate) fn release(id: usize) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&(h, _)| h == id) {
            held.remove(pos);
        }
    });
}
