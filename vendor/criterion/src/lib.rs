//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the same macro and builder surface (`criterion_group!`,
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups,
//! throughput annotations) but with a deliberately simple measurement
//! loop: warm up briefly, run a fixed wall-clock budget, report mean
//! iteration time and derived throughput. Good enough to keep the
//! micro-benchmarks runnable and comparable run-to-run on one machine.

use std::time::{Duration, Instant};

/// Work-size annotation used to derive throughput from iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly within the time budget, timing each batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: a few untimed calls to fault in caches/allocations.
        for _ in 0..3 {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.budget {
            std::hint::black_box(f());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iters_done = iters.max(1);
    }

    fn per_iter(&self) -> Duration {
        self.elapsed / self.iters_done.max(1) as u32
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per = b.per_iter();
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if per > Duration::ZERO => {
            format!(
                "  {:8.1} MiB/s",
                n as f64 / per.as_secs_f64() / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) if per > Duration::ZERO => {
            format!("  {:8.0} elem/s", n as f64 / per.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "bench {name:40} {:>12.3} µs/iter ({} iters){rate}",
        per.as_secs_f64() * 1e6,
        b.iters_done
    );
}

/// Benchmark registry and runner.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            budget: self.budget,
        };
        f(&mut b);
        report(&name.into(), &b, None);
        self
    }

    /// Accepted for API compatibility; the simple runner ignores it.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the work size used to derive throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the simple runner ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            budget: self.criterion.budget,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, name.into()), &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function, like the real macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
