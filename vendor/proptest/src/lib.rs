//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro, `Strategy` with `prop_map`, ranges / tuples /
//! `prop::collection::vec` / `any::<T>()` / `prop_oneof!`, and the
//! `prop_assert*` family. Inputs are generated from a deterministic
//! per-test seed so failures are reproducible (re-run with
//! `PROPTEST_SEED=<seed>`); there is **no shrinking** — a failing case
//! reports its case index and seed instead.

use std::fmt;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating test inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

// ---------------------------------------------------------------------------
// prop:: namespace
// ---------------------------------------------------------------------------

/// Mirror of proptest's `prop` module tree.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        /// Generates vectors whose length falls in `size`.
        pub fn vec<S: Strategy>(
            element: S,
            size: std::ops::Range<usize>,
        ) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.clone().generate(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Index-into-a-collection helper.
    pub mod sample {
        use super::super::{Arbitrary, TestRng};

        /// A deferred collection index: generated unconstrained, resolved
        /// against a concrete length with [`Index::index`].
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// This index resolved against a collection of `len` items.
            /// Panics when `len == 0`, like the real crate.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Index {
                Index(rng.next_u64())
            }
        }
    }

    /// Per-type `ANY` constants.
    pub mod num {
        macro_rules! any_mod {
            ($($m:ident => $t:ty),*) => {$(
                /// Whole-domain strategy constant for the numeric type.
                pub mod $m {
                    use crate::{Strategy, TestRng};

                    /// Whole-domain strategy.
                    #[derive(Clone, Copy, Debug)]
                    pub struct AnyStrategy;

                    /// Generates any value of the type.
                    pub const ANY: AnyStrategy = AnyStrategy;

                    impl Strategy for AnyStrategy {
                        type Value = $t;
                        fn generate(&self, rng: &mut TestRng) -> $t {
                            rng.next_u64() as $t
                        }
                    }
                }
            )*};
        }
        any_mod!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
                 i8 => i8, i16 => i16, i32 => i32, i64 => i64);
    }

    /// Boolean strategy constant.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Whole-domain boolean strategy.
        #[derive(Clone, Copy, Debug)]
        pub struct AnyStrategy;

        /// Generates either boolean.
        pub const ANY: AnyStrategy = AnyStrategy;

        impl Strategy for AnyStrategy {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------------

/// Runner knobs; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Accepted for syntax compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 48,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test deterministic base seed: FNV-1a of the test path, XORed with
/// `PROPTEST_SEED` when set (for replaying a failure).
pub fn base_seed(test_name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            h ^= v;
        }
    }
    h
}

/// Runs `body` for each case with a deterministic RNG; panics with a
/// reproducible case id on failure.
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let seed = base_seed(test_name);
    for case in 0..config.cases {
        let mut rng = TestRng::new(seed ^ (case as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest property `{test_name}` failed at case {case}/{} \
                 (base seed {seed:#x}): {e}",
                config.cases
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Property-test entry point; mirrors proptest's macro syntax.
#[macro_export]
macro_rules! proptest {
    // With a config attribute.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(&config, concat!(module_path!(), "::", stringify!($name)), |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
    // Without a config attribute.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Chooses uniformly among the listed strategies each case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf {
            options: vec![$($crate::Strategy::boxed($strat)),+],
        }
    };
}

/// Strategy built by [`prop_oneof!`]: a uniform choice among alternatives.
pub struct OneOf<T> {
    /// The alternatives.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// One-stop import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 10u64..20, f in 0.25f64..0.75, b in 1u8..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!((1..=3).contains(&b));
        }

        #[test]
        fn vec_and_oneof_compose(
            v in prop::collection::vec(any::<u8>(), 2..5),
            pick in prop_oneof![Just(1u32), Just(2u32), 10u32..12],
            sel in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(pick == 1 || pick == 2 || pick == 10 || pick == 11);
            prop_assert!(sel.index(v.len()) < v.len());
        }

        #[test]
        fn prop_map_applies(doubled in (0u32..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 1);
        }
    }
}
