//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{bounded, unbounded}` with the semantics
//! the compaction pipeline relies on: multi-producer **multi-consumer**
//! queues, blocking `send`/`recv`, and disconnect detection — `send` fails
//! once every receiver is gone, `recv` drains the queue then fails once
//! every sender is gone. Built on `Mutex` + two `Condvar`s; not as fast as
//! the real lock-free implementation, but the pipeline's queues carry
//! hundreds-of-KB sub-tasks, so channel overhead is noise here.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        /// Signaled when the queue gains an item or loses all senders.
        not_empty: Condvar,
        /// Signaled when the queue loses an item or loses all receivers.
        not_full: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent value like the real crate.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Creates a channel holding at most `cap` in-flight items.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap))
    }

    /// Creates a channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner {
                items: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, Inner<T>> {
        match shared.queue.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the value is enqueued, or fails when every receiver
        /// has been dropped (the value comes back in the error).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = lock(&self.shared);
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = inner.cap.is_some_and(|c| inner.items.len() >= c);
                if !full {
                    inner.items.push_back(value);
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = match self.shared.not_full.wait(inner) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            lock(&self.shared).senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.shared);
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; fails when the queue is empty and
        /// every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = lock(&self.shared);
            loop {
                if let Some(item) = inner.items.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = match self.shared.not_empty.wait(inner) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        /// Non-blocking receive: `None` when empty (even if disconnected).
        pub fn try_recv(&self) -> Option<T> {
            let item = lock(&self.shared).items.pop_front();
            if item.is_some() {
                self.shared.not_full.notify_one();
            }
            item
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            lock(&self.shared).receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.shared);
            inner.receivers -= 1;
            if inner.receivers == 0 {
                // Senders blocked on a full queue must observe the
                // disconnect, not wait forever.
                drop(inner);
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator over received values.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_roundtrip_and_disconnect() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            drop(tx);
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_when_receiver_gone() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn blocked_sender_unblocks_on_receiver_drop() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(rx); // full queue + dropped receiver must not deadlock
            assert!(t.join().unwrap().is_err());
        }

        #[test]
        fn multi_consumer_sees_all_items() {
            let (tx, rx) = bounded::<u32>(4);
            let rx2 = rx.clone();
            let consumers: Vec<_> = [rx, rx2]
                .into_iter()
                .map(|r| std::thread::spawn(move || r.iter().count()))
                .collect();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = consumers.into_iter().map(|t| t.join().unwrap()).sum();
            assert_eq!(total, 100);
        }
    }
}
