//! Disaster recovery: destroy the manifest, corrupt a table, and rebuild
//! the database with `repair()` — then prove the surviving data is intact.
//! A second act runs the engine over a fault-injecting filesystem: flaky
//! writes are retried transparently, a dying disk latches a background
//! error instead of panicking, and the frozen image reopens cleanly.
//!
//! ```sh
//! cargo run --release --example disaster_recovery
//! ```

use pcp::core::PipelinedExec;
use pcp::lsm::filename::CURRENT;
use pcp::lsm::{repair, Db, Options};
use pcp::storage::{EnvRef, FaultEnv, FaultKind, FaultOp, SimDevice, SimEnv};
use std::sync::Arc;

fn opts() -> Options {
    Options {
        memtable_bytes: 256 << 10,
        sstable_bytes: 128 << 10,
        block_cache_bytes: 4 << 20, // read path uses the LRU block cache
        executor: Arc::new(PipelinedExec::pcp(64 << 10)),
        ..Default::default()
    }
}

fn main() -> std::io::Result<()> {
    let env: EnvRef = Arc::new(SimEnv::new(Arc::new(SimDevice::mem(1 << 30))));

    // Build a store with a few thousand entries across several tables.
    {
        let db = Db::open(Arc::clone(&env), opts())?;
        let mut x = 0xFACE_FEEDu64;
        let mut value = vec![0u8; 120];
        for i in 0..20_000u64 {
            for b in value.iter_mut() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *b = x as u8;
            }
            let tag = format!("record-{i}|");
            value[..tag.len().min(32)].copy_from_slice(&tag.as_bytes()[..tag.len().min(32)]);
            db.put(format!("user/{:08}", i % 8000).as_bytes(), &value)?;
        }
        db.flush()?;
        db.wait_idle()?;
        println!("built store:\n{}", db.debug_string());
    }

    // Disaster strikes: CURRENT and all manifests are gone, and one table
    // gets a flipped bit.
    env.delete(CURRENT)?;
    for name in env.list()? {
        if name.starts_with("MANIFEST-") {
            env.delete(&name)?;
        }
    }
    if let Some(victim) = env.list()?.into_iter().find(|n| n.ends_with(".sst")) {
        let f = env.open(&victim)?;
        let mut bytes = f.read_at(0, f.len() as usize)?.to_vec();
        bytes[64] ^= 0x01;
        let mut w = env.create(&victim)?;
        w.append(&bytes)?;
        w.sync()?;
        println!("destroyed manifest; corrupted {victim}");
    }

    // Repair.
    let report = repair(Arc::clone(&env))?;
    println!(
        "repair: {} tables recovered ({} entries), {} quarantined, max seq {}",
        report.recovered_tables,
        report.recovered_entries,
        report.quarantined.len(),
        report.max_sequence
    );
    for q in &report.quarantined {
        println!("  quarantined: {q}");
    }

    // Reopen and verify.
    let db = Db::open(env, opts())?;
    let integrity = db.verify_integrity()?;
    println!(
        "reopened: integrity {} over {} tables / {} blocks",
        if integrity.is_healthy() { "healthy" } else { "BROKEN" },
        integrity.tables,
        integrity.blocks
    );
    let mut it = db.iter();
    it.seek_to_first();
    let mut live = 0u64;
    while it.valid() {
        live += 1;
        it.next();
    }
    println!("scan sees {live} live keys (8000 written; any gap is the quarantined table's share, minus WAL replay)");

    fault_injection_smoke()
}

/// Act two: the same engine on a disk that misbehaves on purpose.
fn fault_injection_smoke() -> std::io::Result<()> {
    println!("\n--- fault-injection smoke ---");
    let inner: EnvRef = Arc::new(SimEnv::new(Arc::new(SimDevice::mem(1 << 30))));
    let fault = FaultEnv::new(Arc::clone(&inner), 0xB0_5EED);
    // A flaky disk: 2% of table flushes and syncs fail transiently, and
    // the second table flush is guaranteed to hiccup so the demo always
    // shows a retry.
    fault
        .set_probability(FaultOp::Flush, 0.02)
        .set_probability(FaultOp::Sync, 0.02)
        .set_probabilistic_kind(FaultKind::Transient)
        .set_file_filter(".sst")
        .schedule_on_file(FaultOp::Flush, 2, FaultKind::Transient, ".sst");
    let env: EnvRef = Arc::new(fault.clone());

    let db = Db::open(Arc::clone(&env), opts())?;
    for i in 0..10_000u64 {
        db.put(
            format!("user/{:08}", i % 4000).as_bytes(),
            format!("value-{i}-{}", "z".repeat(100)).as_bytes(),
        )?;
    }
    db.flush()?;
    db.wait_idle()?;
    let stats = fault.stats();
    println!(
        "flaky disk survived: {} transient faults injected, {} background retries, health {:?}",
        stats.transient,
        db.metrics().bg_retries,
        db.health()
    );

    // The disk dies for real: every table write now fails permanently.
    fault
        .set_probability(FaultOp::Flush, 1.0)
        .set_probability(FaultOp::Sync, 1.0)
        .set_probabilistic_kind(FaultKind::Permanent);
    for i in 0..4000u64 {
        if db
            .put(format!("user/{:08}", i % 4000).as_bytes(), b"doomed")
            .is_err()
        {
            break; // writes stall once the background error latches
        }
    }
    let _ = db.flush();
    let _ = db.wait_idle();
    println!(
        "dead disk handled: health {:?}, {} permanent faults",
        db.health(),
        fault.stats().permanent
    );
    drop(db);

    // The data that reached the device is still there: reopen the inner
    // image with the faults gone.
    let db = Db::open(inner, opts())?;
    let integrity = db.verify_integrity()?;
    println!(
        "reopened past the dead disk: integrity {} over {} tables, {:?}",
        if integrity.is_healthy() { "healthy" } else { "BROKEN" },
        integrity.tables,
        db.health()
    );
    Ok(())
}
