//! Write pauses: the paper's motivating coupling between compaction
//! bandwidth and system throughput, observed live.
//!
//! Runs the same insert burst against an engine using SCP and one using
//! PCP on a simulated HDD, and reports insert throughput, stall counts
//! and stall time — slow compaction ⇒ L0 fills ⇒ writers pause.
//!
//! ```sh
//! cargo run --release --example write_pauses
//! ```

use pcp::core::{PipelinedExec, ScpExec};
use pcp::lsm::{CompactionExec, CompactionPolicy, Db, Options};
use pcp::storage::{EnvRef, HddModel, SimDevice, SimEnv};
use pcp::workload::{run_inserts, KeyOrder, WorkloadConfig};
use std::sync::Arc;

fn engine(executor: Arc<dyn CompactionExec>) -> Db {
    let env: EnvRef = Arc::new(SimEnv::new(Arc::new(SimDevice::new(
        "hdd0",
        HddModel::default(),
        1 << 40,
        1.0,
    ))));
    // Scaled-down engine constants so the burst triggers real compactions
    // within seconds (see DESIGN.md §3).
    let opts = Options {
        memtable_bytes: 1 << 20,
        sstable_bytes: 512 << 10,
        policy: CompactionPolicy {
            l0_trigger: 4,
            base_level_bytes: 2 << 20,
            level_multiplier: 10,
        },
        l0_slowdown_files: 6,
        l0_stop_files: 10,
        executor,
        ..Default::default()
    };
    Db::open(env, opts).unwrap()
}

fn main() {
    let cfg = WorkloadConfig {
        entries: 100_000,
        key_len: 16,
        value_len: 100,
        key_space: Some(400_000),
        order: KeyOrder::UniformRandom,
        value_compressibility: 0.5,
        seed: 0xBEEF,
        pace: None,
    };

    println!("insert burst of {} entries on a simulated HDD:\n", cfg.entries);
    for (name, exec) in [
        (
            "SCP",
            Arc::new(ScpExec::new(256 << 10)) as Arc<dyn CompactionExec>,
        ),
        ("PCP", Arc::new(PipelinedExec::pcp(256 << 10))),
    ] {
        let db = engine(exec);
        let r = run_inserts(&db, &cfg).unwrap();
        println!("{name}:");
        println!("  insert throughput: {:8.0} ops/s", r.iops);
        println!(
            "  write pauses:      {} stalls ({:.0} ms stalled), {} slowdowns",
            r.stall_events,
            r.stall_time.as_secs_f64() * 1e3,
            r.slowdown_events
        );
        println!(
            "  compaction:        {} runs, {:.1} MB moved at {:.1} MB/s\n",
            r.compaction_count,
            r.compaction_bytes as f64 / 1048576.0,
            r.compaction_bandwidth / 1048576.0
        );
    }
    println!("faster background compaction (PCP) = fewer/shorter pauses = higher IOPS —");
    println!("the coupling behind the paper's Fig. 10.");
}
