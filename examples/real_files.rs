//! The same engine on a real filesystem: persist a small key-value
//! dataset under /tmp, close, reopen, and verify recovery — WAL replay,
//! manifest recovery, pipelined compaction, all on `std::fs`.
//!
//! ```sh
//! cargo run --release --example real_files
//! ```

use pcp::core::PipelinedExec;
use pcp::lsm::{Db, Options};
use pcp::storage::StdFsEnv;
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("pcp-real-files-example");
    let _ = std::fs::remove_dir_all(&dir);

    let opts = || Options {
        memtable_bytes: 512 << 10,
        sstable_bytes: 256 << 10,
        executor: Arc::new(PipelinedExec::pcp(128 << 10)),
        ..Default::default()
    };

    // Phase 1: load and crash (drop without clean flush of the memtable).
    {
        let env = Arc::new(StdFsEnv::new(&dir)?);
        let db = Db::open(env, opts())?;
        for i in 0..20_000u64 {
            db.put(
                format!("user/{:08}", i % 7000).as_bytes(),
                format!("profile-{i}").as_bytes(),
            )?;
        }
        db.delete(b"user/00000042")?;
        println!("phase 1: wrote 20k entries to {}", dir.display());
        let m = db.metrics();
        println!(
            "  flushes={} compactions={} (engine dropped with data in WAL)",
            m.flush_count, m.compaction_count
        );
        // db drops here; recent writes live only in the WAL.
    }

    // Phase 2: reopen and verify.
    {
        let env = Arc::new(StdFsEnv::new(&dir)?);
        let db = Db::open(env, opts())?;
        assert_eq!(db.get(b"user/00000042")?, None, "tombstone recovered");
        let v = db.get(b"user/00000007")?.expect("key recovered");
        assert!(v.starts_with(b"profile-"));
        let mut it = db.iter();
        it.seek_to_first();
        let mut n = 0u64;
        while it.valid() {
            n += 1;
            it.next();
        }
        println!("phase 2: recovered, scan sees {n} live keys (expected 6999)");
        assert_eq!(n, 6999);
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!("ok");
    Ok(())
}
