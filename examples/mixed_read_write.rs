//! Mixed read/write workload with latency histograms: observe how reads
//! behave while background pipelined compaction reorganizes the tree, and
//! verify store integrity at the end.
//!
//! ```sh
//! cargo run --release --example mixed_read_write
//! ```

use pcp::core::PipelinedExec;
use pcp::lsm::{CompactionPolicy, Db, Options};
use pcp::storage::{EnvRef, SimDevice, SimEnv, SsdModel};
use pcp::workload::{run_mixed, KeyOrder, MixedConfig};
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    // SSD-modeled device at 1/10 time scale: real latency behaviour,
    // example-friendly runtime.
    let env: EnvRef = Arc::new(SimEnv::new(Arc::new(SimDevice::new(
        "ssd0",
        SsdModel::default(),
        1 << 40,
        0.1,
    ))));
    let db = Db::open(
        env,
        Options {
            memtable_bytes: 1 << 20,
            sstable_bytes: 512 << 10,
            policy: CompactionPolicy {
                l0_trigger: 4,
                base_level_bytes: 4 << 20,
                level_multiplier: 10,
            },
            executor: Arc::new(PipelinedExec::pcp(256 << 10)),
            ..Default::default()
        },
    )?;

    for (phase, read_fraction) in [("load (writes only)", 0.0), ("serve (70% reads)", 0.7)] {
        let cfg = MixedConfig {
            ops: 120_000,
            read_fraction,
            key_space: 200_000,
            order: KeyOrder::Zipfian(0.9),
            seed: 42,
            ..Default::default()
        };
        let r = run_mixed(&db, &cfg)?;
        println!("== {phase} ==");
        println!(
            "  {:.0} ops/s over {:?} ({} reads / {} writes, {:.1}% read hits)",
            r.ops_per_sec(),
            r.wall,
            r.reads,
            r.writes,
            if r.reads > 0 {
                100.0 * r.read_hits as f64 / r.reads as f64
            } else {
                0.0
            }
        );
        if r.reads > 0 {
            println!("  read  latency: {}", r.read_latency.summary());
        }
        if r.writes > 0 {
            println!("  write latency: {}", r.write_latency.summary());
        }
    }
    db.wait_idle()?;

    println!("\n{}", db.debug_string());
    let report = db.verify_integrity()?;
    println!(
        "integrity: {} tables, {} blocks, {} entries — {}",
        report.tables,
        report.blocks,
        report.entries,
        if report.is_healthy() {
            "healthy".to_string()
        } else {
            format!("{} ERRORS", report.errors.len())
        }
    );
    Ok(())
}
