//! KV service demo: a range-sharded engine behind the TCP front end.
//!
//! Opens a [`pcp::shard::ShardedDb`] over in-memory simulated devices,
//! starts the [`pcp::shard::KvServer`] on an ephemeral localhost port,
//! drives it two ways — through the wire with [`pcp::shard::KvClient`],
//! and directly through the `KvStore` backend with the mixed workload
//! driver — and prints per-shard throughput plus service statistics.
//!
//! ```sh
//! cargo run --release --example kv_server
//! # or serve on a fixed address with real files:
//! cargo run --release --example kv_server -- 127.0.0.1:4700 /tmp/pcp-kv
//! # event-driven front end (epoll reactor + worker pool, DESIGN.md §14):
//! cargo run --release --example kv_server -- --reactor
//! ```
//!
//! With an address argument the server stays up until Ctrl-C so external
//! clients can connect; without one it runs the scripted demo and exits.
//! `--reactor`/`--blocking` pick the front end (default: blocking, or
//! the `PCP_SERVER_MODE` environment override).
//!
//! Each shard compacts with the production default, the adaptive PCP
//! executor (`Options::default()`; override with `PCP_EXECUTOR`), under
//! the shared cross-shard scheduler — see `DESIGN.md` §15.

use pcp::lsm::Options;
use pcp::shard::{HashRouter, KvClient, KvServer, ServerMode, ServerOptions, ShardedDb};
use pcp::storage::{EnvRef, SimDevice, SimEnv};
use pcp::workload::{run_mixed, MixedConfig};
use std::sync::Arc;
use std::time::Instant;

const SHARDS: usize = 4;

fn open_engine(dir: Option<&str>) -> Arc<ShardedDb> {
    let router = Arc::new(HashRouter::new(SHARDS));
    match dir {
        Some(dir) => {
            // Real files: one subdirectory per shard under `dir`.
            Arc::new(ShardedDb::open(Options::with_dir(dir), router).unwrap())
        }
        None => {
            let envs: Vec<EnvRef> = (0..SHARDS)
                .map(|_| {
                    Arc::new(SimEnv::new(Arc::new(SimDevice::mem(1 << 30)))) as EnvRef
                })
                .collect();
            Arc::new(ShardedDb::open_with_envs(envs, Options::default(), router).unwrap())
        }
    }
}

fn print_shard_throughput(db: &ShardedDb, wall_secs: f64) {
    println!("per-shard throughput:");
    for (i, m) in db.shard_metrics().iter().enumerate() {
        println!(
            "  shard {i}: {:>8} puts ({:>9.0} put/s)  {:>7} gets  {} flushes  {} compactions",
            m.puts,
            m.puts as f64 / wall_secs,
            m.gets,
            m.flush_count,
            m.compaction_count,
        );
    }
}

fn main() {
    let mut mode: Option<ServerMode> = None;
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--reactor" => mode = Some(ServerMode::Reactor),
            "--blocking" => mode = Some(ServerMode::Blocking),
            _ => positional.push(arg),
        }
    }
    let mut positional = positional.into_iter();
    let addr = positional.next();
    let dir = positional.next();

    let db = open_engine(dir.as_deref());
    let bind = addr.as_deref().unwrap_or("127.0.0.1:0");
    let mut server = KvServer::start_with(
        Arc::clone(&db),
        bind,
        ServerOptions {
            mode,
            ..ServerOptions::default()
        },
    )
    .unwrap();
    println!(
        "pcp-kv: {SHARDS} shards, {} front end, serving on {} ({})",
        match mode.or_else(ServerMode::from_env) {
            Some(ServerMode::Reactor) => "reactor",
            _ => "blocking",
        },
        server.local_addr(),
        dir.as_deref().unwrap_or("in-memory simulated devices"),
    );

    if addr.is_some() {
        // Serve until interrupted.
        println!("press Ctrl-C to stop");
        loop {
            std::thread::sleep(std::time::Duration::from_secs(60));
        }
    }

    // Act 1 — through the wire: a client does puts, gets, a batch, a scan.
    let mut client = KvClient::connect(server.local_addr()).unwrap();
    let t0 = Instant::now();
    for i in 0..5_000u32 {
        client
            .put(format!("wire-{i:06}").as_bytes(), format!("value-{i}").as_bytes())
            .unwrap();
    }
    let wire_wall = t0.elapsed();
    assert_eq!(
        client.get(b"wire-004242").unwrap(),
        Some(b"value-4242".to_vec())
    );
    let page = client.scan(b"wire-004990", 100).unwrap();
    println!(
        "wire: 5000 puts in {:.2?} ({:.0} op/s), scan from wire-004990 returned {} keys",
        wire_wall,
        5_000.0 / wire_wall.as_secs_f64(),
        page.len()
    );

    // Act 2 — the mixed workload driver runs unchanged against the
    // sharded engine through the KvStore backend trait.
    let t1 = Instant::now();
    let report = run_mixed(
        db.as_ref(),
        &MixedConfig {
            ops: 50_000,
            read_fraction: 0.4,
            key_space: 20_000,
            ..MixedConfig::default()
        },
    )
    .unwrap();
    let mixed_wall = t1.elapsed();
    println!(
        "mixed: {} reads ({} hits) + {} writes in {:.2?} ({:.0} op/s)",
        report.reads,
        report.read_hits,
        report.writes,
        mixed_wall,
        report.ops_per_sec(),
    );
    db.wait_idle().unwrap();
    print_shard_throughput(&db, t0.elapsed().as_secs_f64());

    // Service + engine statistics over the wire.
    let stats = client.stats().unwrap();
    println!(
        "stats: {} service ops, {} errors, {} shards, {} engine puts, \
         read p99 {:.1} µs, write p99 {:.1} µs",
        stats.ops,
        stats.errors,
        stats.shards,
        stats.engine_puts,
        stats.read_p99_nanos as f64 / 1e3,
        stats.write_p99_nanos as f64 / 1e3,
    );
    println!("health: {:?}", db.health());

    // Observability: the same registry backs the METRICS wire op and the
    // machine-readable JSON snapshot (metric contract: OBSERVABILITY.md).
    let exposition = client.metrics_text().unwrap();
    let sample_lines = pcp::obs::validate_exposition(&exposition).unwrap();
    println!("metrics: {sample_lines} samples over the wire; service series:");
    for line in exposition
        .lines()
        .filter(|l| l.starts_with("pcp_service_") && !l.contains("_bucket"))
        .take(6)
    {
        println!("  {line}");
    }
    let json = server.registry().snapshot().to_json();
    let json_path = std::env::temp_dir().join("pcp_kv_server_obs.json");
    std::fs::write(&json_path, format!("{json}\n")).unwrap();
    println!(
        "metrics: full JSON snapshot ({} bytes) written to {}",
        json.len(),
        json_path.display()
    );

    drop(client);
    server.shutdown();
    println!("server drained and stopped");
}
