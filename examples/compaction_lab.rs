//! Compaction lab: run one identical compaction through SCP, PCP, C-PPCP
//! and S-PPCP on simulated HDD and SSD devices, and print the per-step
//! breakdown and bandwidth of each — the paper's §III/§IV story in one
//! binary.
//!
//! ```sh
//! cargo run --release --example compaction_lab
//! ```

use pcp::core::{PipelinedExec, ScpExec, Step};
use pcp::lsm::filename::table_file;
use pcp::lsm::{CompactionExec, CompactionRequest};
use pcp::sstable::key::{make_internal_key, ValueType, MAX_SEQUENCE};
use pcp::sstable::{TableBuilder, TableBuilderOptions, TableReader};
use pcp::storage::{DeviceRef, EnvRef, HddModel, Raid0, SimDevice, SimEnv, SsdModel};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Instant;

const SUBTASK: u64 = 512 << 10;

fn build_inputs(env: &EnvRef, entries: usize) -> (Vec<Arc<TableReader>>, Vec<Arc<TableReader>>, u64) {
    let mut input_bytes = 0;
    let mk = |name: &str, n: usize, stride: u64, seq0: u64| {
        let f = env.create(name).unwrap();
        let mut b = TableBuilder::new(f, TableBuilderOptions::default());
        let mut x = 0x0123_4567_89AB_CDEFu64;
        for i in 0..n {
            let ik = make_internal_key(
                format!("{:016}", i as u64 * stride).as_bytes(),
                seq0 + i as u64,
                ValueType::Value,
            );
            let mut v = format!("v{i}-").into_bytes();
            // Half compressible, half pseudo-random (snappy-like corpus).
            v.extend_from_slice(&b"pipelined-compaction-pipelined-compaction-"[..40]);
            for _ in 0..50 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                v.push(x as u8);
            }
            b.add(&ik, &v).unwrap();
        }
        let stats = b.finish().unwrap();
        (
            Arc::new(TableReader::open(env.open(name).unwrap()).unwrap()),
            stats.file_size,
        )
    };
    let (lower, s1) = mk("lower.sst", entries, 2, 1);
    let (upper, s2) = mk("upper.sst", entries / 2, 4, 1_000_000);
    input_bytes += s1 + s2;
    (vec![upper], vec![lower], input_bytes)
}

fn run(env: EnvRef, name: &str, exec: &dyn CompactionExec, profile: &pcp::core::CompactionProfile) {
    let (upper, lower, input_bytes) = build_inputs(&env, 20_000);
    let req = CompactionRequest {
        env: Arc::clone(&env),
        upper,
        lower,
        output_level: 2,
        bottom_level: true,
        smallest_snapshot: MAX_SEQUENCE,
        file_numbers: Arc::new(AtomicU64::new(100)),
        table_opts: TableBuilderOptions::default(),
        max_output_bytes: 2 << 20,
        grant: pcp_lsm::ResourceGrant::unlimited(),
    };
    let t0 = Instant::now();
    let outputs = exec.compact(&req).unwrap();
    let wall = t0.elapsed();
    let out_bytes: u64 = outputs.iter().map(|f| f.size).sum();
    let moved = input_bytes + out_bytes;
    let snap = profile.snapshot();
    print!("{name:28} {:7.2} MB/s  |", moved as f64 / wall.as_secs_f64() / 1048576.0);
    for s in Step::ALL {
        print!(" {}={:4.1}%", s.label(), snap.fraction(s) * 100.0);
    }
    println!("  ({} output tables)", outputs.len());
    for f in outputs {
        let _ = env.delete(&table_file(f.number));
    }
}

fn main() {
    println!("One compaction (≈7 MB in), four procedures, two devices.\n");

    for device in ["hdd", "ssd"] {
        println!("== {} ==", device.to_uppercase());
        let mk_env = || -> EnvRef {
            match device {
                "hdd" => Arc::new(SimEnv::new(Arc::new(SimDevice::new(
                    "hdd0",
                    HddModel::default(),
                    1 << 40,
                    1.0,
                )))),
                _ => Arc::new(SimEnv::new(Arc::new(SimDevice::new(
                    "ssd0",
                    SsdModel::default(),
                    1 << 40,
                    1.0,
                )))),
            }
        };
        let scp = ScpExec::new(SUBTASK);
        run(mk_env(), "SCP (sequential baseline)", &scp, &scp.profile());
        let pcp = PipelinedExec::pcp(SUBTASK);
        run(mk_env(), "PCP (3-stage pipeline)", &pcp, &pcp.profile());
        let cppcp = PipelinedExec::c_ppcp(SUBTASK, 2);
        run(mk_env(), "C-PPCP (2 compute workers)", &cppcp, &cppcp.profile());
        // S-PPCP gets a 4-member RAID0 like the paper's md array, with a
        // sub-task-sized stripe (see EXPERIMENTS.md, Fig. 12 note).
        let members: Vec<DeviceRef> = (0..4)
            .map(|i| {
                let dev: DeviceRef = if device == "hdd" {
                    Arc::new(SimDevice::new(
                        format!("{device}{i}"),
                        HddModel::default(),
                        1 << 40,
                        1.0,
                    ))
                } else {
                    Arc::new(SimDevice::new(
                        format!("{device}{i}"),
                        SsdModel::default(),
                        1 << 40,
                        1.0,
                    ))
                };
                dev
            })
            .collect();
        let raid: EnvRef = Arc::new(SimEnv::new(Arc::new(Raid0::new(
            "md0",
            members,
            SUBTASK,
        ))));
        let sppcp = PipelinedExec::s_ppcp(SUBTASK, 4);
        run(raid, "S-PPCP (4 disks, RAID0)", &sppcp, &sppcp.profile());
        println!();
    }
    println!("note: C-PPCP compute workers cannot parallelize on a 1-core host;");
    println!("see `cargo bench --bench fig12` for the DES multi-core series.");
}
