//! Replication and failover demo: a primary KV service ships its
//! group-commit WAL records to a live replica over loopback TCP, the
//! primary is killed at a seeded `FaultEnv` crash point mid-run, and the
//! replica is promoted — every write the client saw acknowledged is
//! still there, and the promoted node immediately accepts new writes.
//!
//! Both nodes run the engine's production defaults: the adaptive PCP
//! executor chooses each compaction's pipeline shape (`DESIGN.md` §15),
//! and replication ships WAL records independently of compaction.
//!
//! ```sh
//! cargo run --release --example replication
//! ```

use pcp::lsm::Options;
use pcp::shard::{
    HashRouter, KvClient, KvServer, ReplConfig, ReplSource, ReplicaServer, Role, ServerOptions,
    ShardedDb,
};
use pcp::storage::{EnvRef, FaultEnv, FaultKind, FaultOp, RetryPolicy, SimDevice, SimEnv};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 2;

fn engine_options() -> Options {
    Options {
        memtable_bytes: 64 << 10,
        sstable_bytes: 64 << 10,
        sync_writes: true,
        ..Options::default()
    }
}

fn main() -> std::io::Result<()> {
    // -- primary: fault-injected filesystems, one replication tap per shard
    let faults: Vec<FaultEnv> = (0..SHARDS)
        .map(|i| {
            let inner: EnvRef = Arc::new(SimEnv::new(Arc::new(SimDevice::mem(256 << 20))));
            FaultEnv::new(inner, 0xDEAD ^ (i as u64))
        })
        .collect();
    // The kill: the 400th WAL sync on shard 0 freezes its filesystem.
    faults[0].schedule_on_file(FaultOp::Sync, 400, FaultKind::Crash, ".log");
    let envs: Vec<EnvRef> = faults.iter().map(|f| Arc::new(f.clone()) as EnvRef).collect();

    let source = ReplSource::new(SHARDS, ReplConfig::default());
    let taps = Arc::clone(&source);
    let primary_db = Arc::new(ShardedDb::open_with_envs_configured(
        envs,
        engine_options(),
        Arc::new(HashRouter::new(SHARDS)),
        |i, o| o.wal_tap = taps.tap(i),
    )?);
    let mut primary = KvServer::start_with(
        Arc::clone(&primary_db),
        "127.0.0.1:0",
        ServerOptions {
            role: Some(Role::Primary),
            repl_source: Some(Arc::clone(&source)),
            on_promote: None,
            ..ServerOptions::default()
        },
    )?;
    println!("primary  serving on {}", primary.local_addr());

    // -- replica: its own engine, pulled over TCP from the primary
    let replica_db = Arc::new(ShardedDb::open_with_envs(
        (0..SHARDS)
            .map(|_| Arc::new(SimEnv::new(Arc::new(SimDevice::mem(256 << 20)))) as EnvRef)
            .collect(),
        engine_options(),
        Arc::new(HashRouter::new(SHARDS)),
    )?);
    let mut replica = ReplicaServer::start(
        Arc::clone(&replica_db),
        "127.0.0.1:0",
        primary.local_addr(),
        RetryPolicy::default(),
    )?;
    println!("replica  serving on {}\n", replica.local_addr());

    // -- act 1: write until the seeded kill fires
    let mut client = KvClient::connect(primary.local_addr())?;
    let mut acked: Vec<String> = Vec::new();
    let mut i = 0u32;
    while !faults[0].crashed() && i < 10_000 {
        let key = format!("order/{i:06}");
        match client.put(key.as_bytes(), format!("payload-{i}").as_bytes()) {
            Ok(()) => acked.push(key),
            Err(e) => {
                println!("write {key} refused: {e}");
                break;
            }
        }
        i += 1;
    }
    println!("crash fired after {i} writes; {} acknowledged", acked.len());
    for f in &faults[1..] {
        f.freeze(); // take the rest of the node down, machine-kill style
    }

    // -- act 2: drain the in-flight stream, then fail over
    let t0 = Instant::now();
    while (0..SHARDS).any(|s| source.lag(s) != (0, 0)) {
        if t0.elapsed() > Duration::from_secs(10) {
            println!("warning: replication queues did not drain");
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    for s in 0..SHARDS {
        println!(
            "shard {s}: acked through sequence {}, lag {:?}, replica applied {}",
            source.acked(s),
            source.lag(s),
            replica.applied_seq(s)
        );
    }
    replica.promote()?;
    println!(
        "\npromoted replica to {:?} (apply errors: {})",
        replica.server().role(),
        replica.apply_errors()
    );

    // -- act 3: the acknowledged history survived; new writes flow
    let mut survivor = KvClient::connect(replica.local_addr())?;
    let mut lost = 0usize;
    for key in &acked {
        if survivor.get(key.as_bytes())?.is_none() {
            lost += 1;
        }
    }
    println!("acked writes lost in failover: {lost} of {}", acked.len());
    assert_eq!(lost, 0, "failover dropped acknowledged writes");
    survivor.put(b"order/next-era", b"accepted")?;
    println!("new write on promoted node: accepted");

    let metrics = survivor.metrics_text()?;
    println!("\nreplication series on the promoted node:");
    for line in metrics
        .lines()
        .filter(|l| l.starts_with("pcp_repl_") && !l.contains("bucket"))
    {
        println!("  {line}");
    }

    replica.shutdown();
    primary.shutdown();
    Ok(())
}
