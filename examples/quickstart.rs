//! Quickstart: open a database with pipelined compaction, write, read,
//! scan, and inspect engine metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pcp::prelude::*;
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    // A RAM-backed simulated filesystem. For real files use
    // `StdFsEnv::new("/tmp/pcp-quickstart")`, for paper-style experiments
    // wrap a `SimDevice` with an `HddModel`/`SsdModel`.
    let env = Arc::new(SimEnv::new(Arc::new(SimDevice::mem(1 << 30))));

    // The paper's configuration: 4 MB memtable, 2 MB SSTables, 4 KB
    // blocks, compression on — and compaction via the three-stage
    // pipelined procedure with 512 KB sub-tasks.
    let opts = Options {
        executor: Arc::new(PipelinedExec::pcp(512 << 10)),
        ..Default::default()
    };
    let db = Db::open(env, opts)?;

    // Point writes, overwrites, deletes.
    db.put(b"fruit/apple", b"red")?;
    db.put(b"fruit/banana", b"yellow")?;
    db.put(b"fruit/cherry", b"dark red")?;
    db.put(b"fruit/apple", b"green")?; // overwrite
    db.delete(b"fruit/banana")?;

    assert_eq!(db.get(b"fruit/apple")?, Some(b"green".to_vec()));
    assert_eq!(db.get(b"fruit/banana")?, None);

    // Atomic batches.
    let mut batch = WriteBatch::new();
    batch.put(b"veg/carrot", b"orange");
    batch.put(b"veg/kale", b"green");
    db.write(batch)?;

    // Snapshot-consistent scans.
    let mut it = db.iter();
    it.seek(b"fruit/");
    println!("scan from 'fruit/':");
    while it.valid() && it.key().starts_with(b"fruit/") {
        println!(
            "  {} => {}",
            String::from_utf8_lossy(it.key()),
            String::from_utf8_lossy(it.value())
        );
        it.next();
    }

    // Load enough data to force flushes and pipelined compactions.
    for i in 0..50_000u64 {
        let key = format!("bulk/{:012}", (i * 2654435761) % 200_000);
        let value = format!("value-{i}-{}", "x".repeat(80));
        db.put(key.as_bytes(), value.as_bytes())?;
    }
    db.wait_idle()?;
    // Push everything down the tree with one manual full-range compaction
    // (the background picker also does this on its own as levels fill).
    db.compact_range(None, None)?;

    let m = db.metrics();
    println!("\nengine metrics after 50k inserts:");
    println!("  flushes:      {}", m.flush_count);
    println!(
        "  compactions:  {} ({} trivial moves)",
        m.compaction_count, m.trivial_moves
    );
    println!(
        "  compacted:    {:.1} MB at {:.1} MB/s",
        (m.compaction_input_bytes + m.compaction_output_bytes) as f64 / 1048576.0,
        m.compaction_bandwidth() / 1048576.0
    );
    println!(
        "  write pauses: {} stalls, {} slowdowns",
        m.stall_events, m.slowdown_events
    );
    println!("\nlevel summary (files, bytes):");
    for (level, (files, bytes)) in db.level_summary().iter().enumerate() {
        if *files > 0 {
            println!("  L{level}: {files:3} files, {:.2} MB", *bytes as f64 / 1048576.0);
        }
    }
    Ok(())
}
