//! # pcp — Pipelined Compaction for the LSM-tree
//!
//! A full-system Rust reproduction of *"Pipelined Compaction for the
//! LSM-tree"* (Zhang, Yue, He, Xiong, Chen, Zhang, Sun — IEEE IPDPS 2014):
//! a LevelDB-class storage engine whose background compactions run as a
//! three-stage pipeline — **stage-read | stage-compute | stage-write** —
//! over independent sub-key ranges, plus the paper's parallel variants
//! (C-PPCP, S-PPCP), analytical model, and every experiment of its
//! evaluation section.
//!
//! ## Quick start
//!
//! ```
//! use pcp::lsm::{Db, Options};
//! use pcp::storage::{SimDevice, SimEnv};
//! use std::sync::Arc;
//!
//! // An in-memory simulated filesystem (swap in an HDD/SSD latency model
//! // or StdFsEnv for real files).
//! let env = Arc::new(SimEnv::new(Arc::new(SimDevice::mem(1 << 30))));
//!
//! // The default executor is the adaptive pipeline: each compaction
//! // picks SCP / PCP / C-PPCP / S-PPCP from the live occupancy gauges.
//! let db = Db::open(env, Options::default()).unwrap();
//! db.put(b"key", b"value").unwrap();
//! assert_eq!(db.get(b"key").unwrap(), Some(b"value".to_vec()));
//! ```
//!
//! To pin the paper's plain PCP shape instead (512 KB sub-tasks):
//!
//! ```
//! # use pcp::lsm::Options;
//! # use pcp::core::PipelinedExec;
//! # use std::sync::Arc;
//! let opts = Options {
//!     executor: Arc::new(PipelinedExec::pcp(512 << 10)),
//!     ..Default::default()
//! };
//! ```
//!
//! The `PCP_EXECUTOR` environment variable
//! (`adaptive|simple|scp|pcp|c-ppcp|s-ppcp`) overrides the default
//! process-wide without code changes.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`codec`] | `pcp-codec` | CRC-32C, LZ block compression, varints (steps S2/S3/S5/S6) |
//! | [`storage`] | `pcp-storage` | simulated HDD/SSD devices, RAID0, `Env` filesystems (steps S1/S7) |
//! | [`sstable`] | `pcp-sstable` | block/table formats, bloom filters, merging iterators |
//! | [`compaction`] | `pcp-compaction` | `CompactionExec` interface, resource grants, the cross-shard scheduler |
//! | [`lsm`] | `pcp-lsm` | memtable, WAL, versions, leveled compaction, the `Db` |
//! | [`core`] | `pcp-core` | **the paper's contribution**: sub-task planner, SCP/PCP/C-PPCP/S-PPCP executors, the adaptive wrapper, Eq. 1–7, step profiler |
//! | [`sim`] | `pcp-sim` | discrete-event pipeline simulator |
//! | [`workload`] | `pcp-workload` | key/value generators and insert drivers |
//! | [`shard`] | `pcp-shard` | range-sharded multi-DB engine and the TCP KV service |
//! | [`obs`] | `pcp-obs` | metrics registry, Prometheus exposition, pipeline event traces |
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results.

pub use pcp_codec as codec;
pub use pcp_compaction as compaction;
pub use pcp_core as core;
pub use pcp_lsm as lsm;
pub use pcp_obs as obs;
pub use pcp_shard as shard;
pub use pcp_sim as sim;
pub use pcp_sstable as sstable;
pub use pcp_storage as storage;
pub use pcp_workload as workload;

/// Convenience prelude for applications.
pub mod prelude {
    pub use pcp_core::{AdaptiveConfig, AdaptiveExec, PipelineConfig, PipelinedExec, ScpExec};
    pub use pcp_obs::{MetricsSnapshot, Registry, TraceLog};
    pub use pcp_lsm::{CompactionLimiter, CompactionPolicy, Db, DbHealth, Options, WriteBatch};
    pub use pcp_shard::{HashRouter, KvClient, KvServer, RangeRouter, ShardedDb, ShardedHealth};
    pub use pcp_storage::{Env, FaultEnv, FaultKind, FaultOp, HddModel, Raid0, RetryPolicy, SimDevice, SimEnv, SsdModel, StdFsEnv};
    pub use pcp_workload::{run_inserts, KeyOrder, KvStore, WorkloadConfig};
}
