#!/usr/bin/env python3
"""Regenerates the measured tables in EXPERIMENTS.md from bench_results/*.tsv.

Run after `cargo bench --workspace`:

    python3 scripts/gen_experiments.py

The script rewrites the blocks between `<!-- tsv:NAME -->` and
`<!-- /tsv -->` markers in EXPERIMENTS.md with the current TSV contents
rendered as markdown tables, leaving the surrounding analysis prose alone.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "bench_results"
DOC = ROOT / "EXPERIMENTS.md"


def tsv_to_md(path: Path) -> str:
    lines = path.read_text().strip().splitlines()
    if not lines:
        return "*(no data)*"
    rows = [line.split("\t") for line in lines]
    header, body = rows[0], rows[1:]
    out = ["| " + " | ".join(header) + " |", "|" + "---|" * len(header)]
    for r in body:
        out.append("| " + " | ".join(r) + " |")
    return "\n".join(out)


def main() -> int:
    text = DOC.read_text()

    def replace(match: re.Match) -> str:
        name = match.group(1)
        tsv = RESULTS / f"{name}.tsv"
        if not tsv.exists():
            body = f"*(missing {tsv.name} — run `cargo bench --workspace`)*"
        else:
            body = tsv_to_md(tsv)
        return f"<!-- tsv:{name} -->\n{body}\n<!-- /tsv -->"

    new = re.sub(r"<!-- tsv:([\w-]+) -->.*?<!-- /tsv -->", replace, text, flags=re.S)
    DOC.write_text(new)
    print("EXPERIMENTS.md updated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
