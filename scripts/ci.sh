#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, lint-clean under clippy.
# Run from the repository root:  ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# The adaptive-executor lanes are timing-sensitive (schedulers sampling
# real thread interleavings): on low-core CI hosts the default test
# parallelism oversubscribes the machine and produces spurious timeouts.
# Run them with a thread count derived from the core count (floor of 2 so
# cross-thread paths still run), and retry a failing lane once serially —
# a genuine regression fails both runs, a scheduling flake only the first.
CORES="$(nproc 2>/dev/null || echo 1)"
TEST_THREADS=$(( CORES < 2 ? 2 : CORES ))
run_adaptive_lane() {
    if ! PCP_EXECUTOR=adaptive cargo test -q "$@" -- --test-threads="$TEST_THREADS"; then
        echo "==> adaptive lane failed at --test-threads=$TEST_THREADS; retrying serially"
        PCP_EXECUTOR=adaptive cargo test -q "$@" -- --test-threads=1
    fi
}

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --examples --release"
cargo build --examples --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q -p pcp-shard --test kv_service (TCP service e2e)"
cargo test -q -p pcp-shard --test kv_service

echo "==> cargo test -q -p pcp-shard --test replication (replication e2e + seeded kill/promote matrix)"
cargo test -q -p pcp-shard --test replication

echo "==> cargo test -q -p pcp-shard --test reactor_frames --test reactor_service (reactor front end)"
cargo test -q -p pcp-shard --test reactor_frames --test reactor_service

echo "==> PCP_SERVER_MODE=reactor kv e2e (existing suites against the event-driven front end)"
PCP_SERVER_MODE=reactor cargo test -q -p pcp-shard --test kv_service
PCP_SERVER_MODE=reactor cargo test -q -p pcp-shard --test replication

echo "==> PCP_EXECUTOR=adaptive engine e2e (full engine suites under the forced adaptive default)"
run_adaptive_lane --test adaptive_scheduler --test engine_with_executors --test fault_injection
run_adaptive_lane -p pcp-shard

echo "==> cargo test -q -p pcp-lint (lint engine: rule fixtures, lexer property test, repo-clean gate)"
cargo test -q -p pcp-lint

echo "==> cargo run -p pcp-lint --release (architectural lint, L1-L8; JSON report archived)"
mkdir -p bench_results
cargo run -q -p pcp-lint --release -- --format json > bench_results/lint_findings.json
# The JSON lane already failed the build on any finding (nonzero exit);
# surface the human-readable summary and rule rationales for the log.
cargo run -q -p pcp-lint --release
cargo run -q -p pcp-lint --release -- --explain L6 L7 L8 > /dev/null

echo "==> cargo test -q --features lock_order (runtime lock-order witness)"
cargo test -q --features lock_order

echo "==> cargo bench -p pcp-bench --bench write_concurrency (group-commit smoke, quick mode)"
cargo bench -p pcp-bench --bench write_concurrency

echo "==> cargo bench -p pcp-bench --bench reactor (reactor-vs-blocking smoke, quick mode)"
cargo bench -p pcp-bench --bench reactor

echo "==> cargo bench -p pcp-bench --bench adaptive (adaptive-vs-fixed-shapes smoke, quick mode)"
cargo bench -p pcp-bench --bench adaptive

echo "==> cargo bench -p pcp-bench --bench scan (readahead + framed-encoding smoke, quick mode)"
cargo bench -p pcp-bench --bench scan

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> ci green"
